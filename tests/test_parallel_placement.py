"""Tests for cost-model-driven placement and work-stealing dispatch.

Covers: HEFT packing against closed-form optimal makespans (LPT on
independent tasks, chains that cannot parallelize), plan determinism
and assignment validity, Equation-1 cost prediction with measured
overrides (blend_measured's median-ratio rescale), placement config
coercion and error cases, bitwise identity of packed + stolen runs
against the serial solver on every backend (with a misprediction
profile that provokes real steals), the measured-cost feedback loop
across cycles, ``placement_feedback`` from traces and plan.json, the
planner's exported ``assignment`` block and its validator, the
doctor's placement/headroom/worst-lane surfacing, the regress
environment block, and the CLI flag plumbing.
"""

import argparse
import json

import numpy as np
import pytest

from repro import obs
from repro.cli import _make_placement
from repro.core.hier_solver import HierarchicalSolver
from repro.core.hierarchy import assign_constraints
from repro.core.workmodel import analytic_work_model, blend_measured
from repro.errors import PlacementError
from repro.obs import analysis
from repro.obs.validate import validate_plan_json
from repro.parallel import (
    ParallelHierarchicalSolver,
    ProcessExecutor,
    ThreadExecutor,
)
from repro.parallel.placement import (
    PlacementConfig,
    coerce_placement,
    hierarchy_edges,
    placement_feedback,
    plan_placement,
    predicted_costs,
)


def _independent(costs):
    return {nid: -1 for nid in costs}


class TestPacking:
    def test_lpt_closed_form(self):
        # 3+2 / 3+2 is the optimal split; list scheduling finds it.
        costs = {0: 3.0, 1: 3.0, 2: 2.0, 3: 2.0}
        plan = plan_placement(costs, _independent(costs), 2)
        assert plan.predicted_makespan == pytest.approx(5.0)
        assert sorted(plan.lane_loads) == pytest.approx([5.0, 5.0])

    def test_single_worker_is_sum(self):
        costs = {0: 1.0, 1: 2.0, 2: 4.0}
        plan = plan_placement(costs, _independent(costs), 1)
        assert plan.predicted_makespan == pytest.approx(7.0)
        assert plan.lane_loads == pytest.approx((7.0,))

    def test_chain_cannot_parallelize(self):
        costs = {0: 1.0, 1: 2.0, 2: 3.0}
        edges = {0: 1, 1: 2, 2: -1}  # leaf -> mid -> root
        plan = plan_placement(costs, edges, 4)
        assert plan.predicted_makespan == pytest.approx(6.0)

    def test_assignment_covers_all_nodes(self):
        costs = {nid: float(nid + 1) for nid in range(7)}
        plan = plan_placement(costs, _independent(costs), 3)
        assert set(plan.assignment) == set(costs)
        assert all(0 <= lane < 3 for lane in plan.assignment.values())
        assert sum(plan.lane_loads) == pytest.approx(sum(costs.values()))

    def test_deterministic(self):
        costs = {nid: float((nid * 7) % 5 + 1) for nid in range(20)}
        a = plan_placement(costs, _independent(costs), 4)
        b = plan_placement(costs, _independent(costs), 4)
        assert a.assignment == b.assignment
        assert a.predicted_makespan == b.predicted_makespan

    def test_rank_decreases_toward_leaves(self):
        costs = {0: 1.0, 1: 1.0, 2: 1.0}
        edges = {0: 2, 1: 2, 2: -1}
        plan = plan_placement(costs, edges, 2)
        # upward rank = own cost + chain to root: leaves outrank the root
        assert plan.rank[0] > plan.rank[2]
        assert plan.rank[1] > plan.rank[2]

    def test_invalid_policy(self):
        with pytest.raises(PlacementError):
            plan_placement({0: 1.0}, {0: -1}, 2, policy="greedy")

    def test_invalid_workers(self):
        with pytest.raises(PlacementError):
            plan_placement({0: 1.0}, {0: -1}, 0)


class TestPredictedCosts:
    def test_all_nodes_priced(self, two_group_problem):
        _, constraints, hierarchy, _ = two_group_problem
        assign_constraints(hierarchy, constraints)
        costs = predicted_costs(hierarchy, batch_size=4)
        assert set(costs) == {n.nid for n in hierarchy.nodes}
        assert all(c >= 0.0 for c in costs.values())

    def test_overrides_win_verbatim(self, two_group_problem):
        _, constraints, hierarchy, _ = two_group_problem
        assign_constraints(hierarchy, constraints)
        nid = hierarchy.nodes[0].nid
        costs = predicted_costs(hierarchy, 4, overrides={nid: 123.0})
        assert costs[nid] == pytest.approx(123.0)

    def test_blend_measured_median_rescale(self):
        predicted = {1: 2.0, 2: 4.0, 3: 8.0}
        costs, scale = blend_measured(predicted, {1: 1.0, 2: 2.0})
        assert scale == pytest.approx(0.5)
        assert costs[1] == pytest.approx(1.0)  # measured verbatim
        assert costs[2] == pytest.approx(2.0)
        assert costs[3] == pytest.approx(4.0)  # rescaled prediction

    def test_blend_without_overlap_keeps_scale_one(self):
        costs, scale = blend_measured({1: 2.0}, {9: 5.0})
        assert scale == pytest.approx(1.0)
        assert costs[1] == pytest.approx(2.0)


class TestConfig:
    def test_coerce_none(self):
        assert coerce_placement(None) is None
        assert coerce_placement("none") is None

    def test_coerce_policy_name(self):
        cfg = coerce_placement("model")
        assert isinstance(cfg, PlacementConfig) and cfg.policy == "model"

    def test_coerce_passthrough(self):
        cfg = PlacementConfig(steal=False)
        assert coerce_placement(cfg) is cfg

    def test_coerce_rejects_garbage(self):
        with pytest.raises(PlacementError):
            coerce_placement(3.14)

    def test_bad_policy_rejected(self):
        with pytest.raises(PlacementError):
            PlacementConfig(policy="rain-dance")

    def test_overrides_coerced_to_numbers(self):
        cfg = PlacementConfig(cost_overrides={"3": "0.5"})
        assert cfg.cost_overrides == {3: 0.5}


class TestHierarchyEdges:
    def test_full_tree(self, two_group_problem):
        _, _, hierarchy, _ = two_group_problem
        edges = hierarchy_edges(hierarchy)
        root = hierarchy.root.nid
        assert edges[root] == -1
        for node in hierarchy.nodes:
            if node.parent is not None:
                assert edges[node.nid] == node.parent.nid

    def test_restricted_set_reroots(self, two_group_problem):
        _, _, hierarchy, _ = two_group_problem
        leaf = hierarchy.leaves()[0]
        edges = hierarchy_edges(hierarchy, nids=[leaf.nid])
        assert edges == {leaf.nid: -1}


class TestBitIdentity:
    """Packed + stolen dispatch must equal the serial solver bitwise."""

    @pytest.fixture()
    def skewed(self, helix2_problem):
        # Wildly wrong predictions: one leaf claimed a million times
        # heavier than everything else.  HEFT piles the rest onto other
        # lanes; when the "heavy" lane finishes instantly it must steal.
        h = helix2_problem.hierarchy
        overrides = {n.nid: 1e-6 for n in h.nodes}
        overrides[h.leaves()[0].nid] = 1.0
        return PlacementConfig(cost_overrides=overrides)

    def _placed(self, problem, executor, placement):
        registry = obs.MetricsRegistry()
        with obs.metrics_scope(registry):
            res = ParallelHierarchicalSolver(
                problem.hierarchy,
                batch_size=16,
                executor=executor,
                placement=placement,
            ).run_cycle(problem.initial_estimate(0))
        return res, registry.snapshot()["counters"]

    def test_thread_backend_with_steals(self, helix2_problem, skewed):
        serial = HierarchicalSolver(
            helix2_problem.hierarchy, batch_size=16
        ).run_cycle(helix2_problem.initial_estimate(0))
        with ThreadExecutor(4) as ex:
            placed, counters = self._placed(helix2_problem, ex, skewed)
        assert np.array_equal(serial.estimate.mean, placed.estimate.mean)
        assert np.array_equal(
            serial.estimate.covariance, placed.estimate.covariance
        )
        assert counters.get("sched.steals", 0) >= 1
        assert counters.get("sched.placement.model", 0) == 1

    def test_process_backend(self, helix2_problem, skewed):
        serial = HierarchicalSolver(
            helix2_problem.hierarchy, batch_size=16
        ).run_cycle(helix2_problem.initial_estimate(0))
        with ProcessExecutor(2) as ex:
            placed, _ = self._placed(helix2_problem, ex, skewed)
        assert np.array_equal(serial.estimate.mean, placed.estimate.mean)
        assert np.array_equal(
            serial.estimate.covariance, placed.estimate.covariance
        )

    def test_serial_executor_no_steals(self, helix2_problem, skewed):
        serial = HierarchicalSolver(
            helix2_problem.hierarchy, batch_size=16
        ).run_cycle(helix2_problem.initial_estimate(0))
        placed, counters = self._placed(helix2_problem, None, skewed)
        assert np.array_equal(serial.estimate.mean, placed.estimate.mean)
        assert counters.get("sched.steals", 0) == 0

    def test_steal_disabled_still_identical(self, helix2_problem, skewed):
        skewed.steal = False
        serial = HierarchicalSolver(
            helix2_problem.hierarchy, batch_size=16
        ).run_cycle(helix2_problem.initial_estimate(0))
        with ThreadExecutor(4) as ex:
            placed, counters = self._placed(helix2_problem, ex, skewed)
        assert np.array_equal(serial.estimate.mean, placed.estimate.mean)
        assert counters.get("sched.steals", 0) == 0


class TestFeedbackLoop:
    def test_measured_costs_recorded(self, helix2_problem):
        solver = ParallelHierarchicalSolver(
            helix2_problem.hierarchy, batch_size=16, placement="model"
        )
        solver.run_cycle(helix2_problem.initial_estimate(0))
        nids = {n.nid for n in helix2_problem.hierarchy.nodes}
        assert set(solver.measured_costs) == nids
        assert all(s >= 0.0 for s in solver.measured_costs.values())
        assert solver.last_placement is not None
        assert set(solver.last_placement.assignment) == nids

    def test_second_cycle_repacks_from_measurements(self, helix2_problem):
        solver = ParallelHierarchicalSolver(
            helix2_problem.hierarchy, batch_size=16, placement="model"
        )
        first = solver.run_cycle(helix2_problem.initial_estimate(0))
        plan1 = solver.last_placement
        second = solver.run_cycle(first.estimate)
        plan2 = solver.last_placement
        assert plan2 is not plan1
        # the repack priced nodes from the measured first cycle
        measured = {n.nid: solver.measured_costs[n.nid]
                    for n in helix2_problem.hierarchy.nodes}
        assert any(
            plan2.costs[nid] != plan1.costs[nid] for nid in measured
        ) or plan2.costs == measured
        assert second.estimate is not None


class TestPlacementFeedback:
    def test_from_plan_json(self, tmp_path):
        doc = {
            "plan_version": 1,
            "assignment": {
                "workers": 2,
                "policy": "heft",
                "makespan_seconds": 2.0,
                "nodes": [
                    {"nid": 0, "worker": 0, "start": 0.0, "finish": 1.5,
                     "seconds": 1.5, "rank": 2.0},
                    {"nid": 1, "worker": 1, "start": 0.0, "finish": 0.0,
                     "seconds": 0.0, "rank": 1.0},
                ],
            },
        }
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(doc))
        fb = placement_feedback(path)
        assert fb == {0: 1.5}  # zero-second rows dropped

    def test_plan_without_assignment_rejected(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"plan_version": 1}))
        with pytest.raises(PlacementError, match="assignment"):
            placement_feedback(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(PlacementError, match="not found"):
            placement_feedback(tmp_path / "nope.json")

    def test_from_trace(self, helix2_problem, tmp_path):
        tracer = obs.Tracer()
        with obs.tracing(tracer):
            ParallelHierarchicalSolver(
                helix2_problem.hierarchy, batch_size=16
            ).run_cycle(helix2_problem.initial_estimate(0))
        trace = tmp_path / "run.spans.jsonl"
        obs.write_spans_jsonl(tracer, trace)
        fb = placement_feedback(trace)
        assert fb and all(sec > 0.0 for sec in fb.values())
        assert set(fb) <= {n.nid for n in helix2_problem.hierarchy.nodes}

    def test_garbage_trace_rejected(self, tmp_path):
        path = tmp_path / "junk.spans.jsonl"
        path.write_text("not json\n")
        with pytest.raises(PlacementError):
            placement_feedback(path)


class TestPlanAssignmentExport:
    @pytest.fixture()
    def helix_trace(self, helix2_problem, tmp_path):
        tracer = obs.Tracer()
        with obs.tracing(tracer):
            ParallelHierarchicalSolver(
                helix2_problem.hierarchy, batch_size=16
            ).run_cycle(helix2_problem.initial_estimate(0))
        return tracer

    def test_block_present_and_valid(self, helix_trace, helix2_problem):
        plan = obs.plan_report(
            helix_trace, workers=[1, 2], seed=0, assignment_workers=2
        )
        assert validate_plan_json(plan) == []
        block = plan["assignment"]
        assert block["workers"] == 2 and block["policy"] == "heft"
        nids = {row["nid"] for row in block["nodes"]}
        assert nids == {n.nid for n in helix2_problem.hierarchy.nodes}
        assert block["makespan_seconds"] > 0.0

    def test_block_absent_by_default(self, helix_trace):
        plan = obs.plan_report(helix_trace, workers=[1, 2], seed=0)
        assert "assignment" not in plan
        assert validate_plan_json(plan) == []

    def test_validator_flags_corrupt_block(self, helix_trace):
        plan = obs.plan_report(
            helix_trace, workers=[1, 2], seed=0, assignment_workers=2
        )
        plan["assignment"]["nodes"][0]["worker"] = 99
        problems = validate_plan_json(plan)
        assert any("worker" in p for p in problems)

    def test_exported_block_feeds_placement(self, helix_trace, tmp_path):
        plan = obs.plan_report(
            helix_trace, workers=[1, 2], seed=0, assignment_workers=2
        )
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan))
        fb = placement_feedback(path)
        assert fb and all(sec > 0.0 for sec in fb.values())


class TestDoctorSurfacing:
    @pytest.fixture()
    def placed_trace(self, helix2_problem):
        tracer = obs.Tracer()
        with ThreadExecutor(2) as ex, obs.tracing(tracer):
            ParallelHierarchicalSolver(
                helix2_problem.hierarchy,
                batch_size=16,
                executor=ex,
                placement="model",
            ).run_cycle(helix2_problem.initial_estimate(0))
        return tracer

    def test_pass_records_placement_policy(self, placed_trace, helix2_problem):
        report = analysis.doctor_report(
            placed_trace, hierarchy=helix2_problem.hierarchy
        )
        assert report["passes"][0]["placement"] == "model"

    def test_headroom_reported(self, placed_trace, helix2_problem):
        report = analysis.doctor_report(
            placed_trace, hierarchy=helix2_problem.hierarchy
        )
        cp = report["passes"][0]["critical_path"]
        assert cp["headroom"] >= 0.0
        assert cp["headroom"] == pytest.approx(
            max(0.0, cp["perfect_speedup"] - cp["achieved_speedup"])
        )

    def test_worst_lane_names_heaviest_subtree(self, placed_trace, helix2_problem):
        report = analysis.doctor_report(
            placed_trace, hierarchy=helix2_problem.hierarchy
        )
        wl = report["passes"][0]["utilization"]["worst_lane"]
        assert wl["busy_seconds"] > 0.0
        heavy = wl["heaviest"]
        assert heavy["nid"] in {n.nid for n in helix2_problem.hierarchy.nodes}
        assert heavy["measured_seconds"] > 0.0
        # Equation-1 attrs are on the spans, so a prediction is attached
        assert heavy["predicted_seconds"] is None or heavy["predicted_seconds"] > 0.0
        text = analysis.format_doctor_report(report)
        assert "placement=model" in text

    def test_plain_trace_reads_placement_none(self, helix2_problem):
        tracer = obs.Tracer()
        with obs.tracing(tracer):
            ParallelHierarchicalSolver(
                helix2_problem.hierarchy, batch_size=16
            ).run_cycle(helix2_problem.initial_estimate(0))
        report = analysis.doctor_report(
            tracer, hierarchy=helix2_problem.hierarchy
        )
        assert report["passes"][0]["placement"] == "none"


class TestRegressEnvironment:
    def test_placement_and_steals_recorded(self, tmp_path):
        from repro.obs import regress

        report = regress.run_regress(repeats=1, placement="model")
        env = report["environment"]
        assert env["placement_policy"] == "model"
        assert env["sched_steals"] >= 0
        assert env["sched_steal_misses"] >= 0

    def test_default_placement_none(self):
        from repro.obs import regress

        report = regress.run_regress(repeats=1)
        assert report["environment"]["placement_policy"] == "none"
        assert report["environment"]["sched_steals"] == 0


class TestCliPlumbing:
    def _ns(self, **kw):
        return argparse.Namespace(
            placement=kw.get("placement", "none"),
            placement_from=kw.get("placement_from"),
        )

    def test_none_by_default(self):
        assert _make_placement(self._ns()) is None

    def test_model_flag(self):
        cfg = _make_placement(self._ns(placement="model"))
        assert isinstance(cfg, PlacementConfig)
        assert cfg.cost_overrides == {}

    def test_placement_from_implies_model(self, tmp_path):
        doc = {
            "plan_version": 1,
            "assignment": {
                "workers": 1, "policy": "heft", "makespan_seconds": 1.0,
                "nodes": [{"nid": 0, "worker": 0, "start": 0.0,
                           "finish": 1.0, "seconds": 1.0, "rank": 1.0}],
            },
        }
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(doc))
        cfg = _make_placement(self._ns(placement_from=str(path)))
        assert cfg is not None and cfg.policy == "model"
        assert cfg.cost_overrides == {0: 1.0}

    def test_bad_feedback_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit):
            _make_placement(
                self._ns(placement_from=str(tmp_path / "missing.json"))
            )


class TestSessionPlacement:
    def test_session_solver_persists_measurements(self, helix2_problem):
        from repro.core.session import SolveSession

        with ThreadExecutor(2) as ex:
            session = SolveSession(
                helix2_problem.hierarchy,
                helix2_problem.constraints,
                batch_size=16,
                executor=ex,
                placement="model",
            )
            session.solve(helix2_problem.initial_estimate(0), max_cycles=2, tol=0.0)
            solver = session.solver
            assert solver.placement is not None
            assert solver.measured_costs
