"""Property-based tests over randomly generated trees and constraint sets.

These are the system's load-bearing invariants, checked on structured
random inputs rather than hand-picked cases:

* flat ≡ hierarchical solving for linear measurements, on *arbitrary*
  valid hierarchies;
* covariance symmetry/PSD preserved by arbitrary update sequences;
* constraint assignment is a partition and respects containment;
* processor assignment invariants on arbitrary trees and counts;
* combination (Figure 3) equals sequential application on random splits.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import DistanceConstraint, LinearConstraint
from repro.constraints.batch import ConstraintBatch, make_batches
from repro.core.assignment import assign_processors
from repro.core.combine import combine_estimates
from repro.core.flat import FlatSolver
from repro.core.hier_solver import HierarchicalSolver
from repro.core.hierarchy import Hierarchy, HierarchyNode, assign_constraints
from repro.core.state import StructureEstimate
from repro.core.update import apply_batch
from repro.core.workmodel import analytic_work_model


# --------------------------------------------------------------- strategies
@st.composite
def random_tree(draw, min_atoms=4, max_atoms=20):
    """A random valid hierarchy over a random atom count.

    Built by recursively splitting a contiguous atom range into 1-3 parts.
    """
    n_atoms = draw(st.integers(min_atoms, max_atoms))

    def build(lo: int, hi: int, depth: int) -> HierarchyNode:
        size = hi - lo
        if size <= 2 or depth >= 3 or draw(st.booleans()):
            return HierarchyNode(atoms=np.arange(lo, hi, dtype=np.int64))
        n_parts = draw(st.integers(2, min(3, size)))
        cuts = sorted(
            draw(
                st.lists(
                    st.integers(lo + 1, hi - 1),
                    min_size=n_parts - 1,
                    max_size=n_parts - 1,
                    unique=True,
                )
            )
        )
        bounds = [lo, *cuts, hi]
        children = [
            build(a, b, depth + 1) for a, b in zip(bounds, bounds[1:]) if b > a
        ]
        if len(children) == 1:
            return children[0]
        return HierarchyNode(
            atoms=np.concatenate([c.atoms for c in children]), children=children
        )

    root = build(0, n_atoms, 0)
    return Hierarchy(root, n_atoms)


@st.composite
def linear_constraints_for(draw, n_atoms: int, max_constraints: int = 10):
    """Random 1-2 atom linear constraints over ``n_atoms`` atoms."""
    n_cons = draw(st.integers(1, max_constraints))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n_cons):
        k = draw(st.integers(1, min(2, n_atoms)))
        atoms = tuple(
            sorted(draw(st.lists(st.integers(0, n_atoms - 1), min_size=k, max_size=k, unique=True)))
        )
        a = rng.normal(size=(1, 3 * k))
        out.append(
            LinearConstraint(atoms, a, rng.normal(size=1), np.array([0.2 + rng.random()]))
        )
    return out


# ------------------------------------------------------------------- tests
class TestFlatHierEquivalence:
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_linear_equivalence_on_random_trees(self, data):
        hierarchy = data.draw(random_tree())
        constraints = data.draw(linear_constraints_for(hierarchy.n_atoms))
        rng = np.random.default_rng(0)
        estimate = StructureEstimate.from_coords(
            rng.normal(0, 2, (hierarchy.n_atoms, 3)), sigma=1.0
        )
        flat = FlatSolver(constraints, batch_size=3).run_cycle(estimate)
        assign_constraints(hierarchy, constraints)
        hier = HierarchicalSolver(hierarchy, batch_size=3).run_cycle(estimate)
        assert np.allclose(flat.estimate.mean, hier.estimate.mean, atol=1e-8)
        assert np.allclose(
            flat.estimate.covariance, hier.estimate.covariance, atol=1e-8
        )


class TestCovarianceInvariants:
    @given(seed=st.integers(0, 10_000), n_updates=st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_psd_and_symmetry_preserved(self, seed, n_updates):
        rng = np.random.default_rng(seed)
        p = 4
        estimate = StructureEstimate.from_coords(rng.normal(0, 2, (p, 3)), sigma=1.5)
        for _ in range(n_updates):
            i, j = rng.choice(p, size=2, replace=False)
            c = DistanceConstraint(
                int(i), int(j), float(rng.uniform(0.5, 5.0)), float(rng.uniform(0.01, 1.0))
            )
            estimate = apply_batch(estimate, ConstraintBatch((c,)))
            cov = estimate.covariance
            assert np.allclose(cov, cov.T, atol=1e-10)
            eigs = np.linalg.eigvalsh(cov)
            assert eigs.min() > -1e-8
            # variance of every coordinate stays within the prior
            assert np.all(np.diag(cov) <= 1.5**2 + 1e-9)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_batched_equals_sequential_linear(self, seed):
        rng = np.random.default_rng(seed)
        estimate = StructureEstimate.from_coords(rng.normal(0, 1, (3, 3)), sigma=1.0)
        cons = []
        for _ in range(5):
            a = rng.normal(size=(1, 6))
            cons.append(
                LinearConstraint((0, 2), a, rng.normal(size=1), np.array([0.3]))
            )
        all_at_once = apply_batch(estimate, ConstraintBatch(tuple(cons)))
        one_by_one = estimate
        for b in make_batches(cons, 1):
            one_by_one = apply_batch(one_by_one, b)
        assert np.allclose(all_at_once.mean, one_by_one.mean, atol=1e-8)
        assert np.allclose(
            all_at_once.covariance, one_by_one.covariance, atol=1e-8
        )


class TestAssignmentProperties:
    @given(data=st.data(), p=st.integers(1, 12))
    @settings(max_examples=25, deadline=None)
    def test_assignment_invariants_on_random_trees(self, data, p):
        hierarchy = data.draw(random_tree())
        constraints = data.draw(linear_constraints_for(hierarchy.n_atoms))
        assign_constraints(hierarchy, constraints)
        asg = assign_processors(hierarchy, p, analytic_work_model())
        asg.validate(hierarchy)  # nesting, counts, bounds
        # Root always holds every processor; leaves hold at least one.
        assert asg.procs[hierarchy.root.nid] == p
        for leaf in hierarchy.leaves():
            assert asg.procs[leaf.nid] >= 1

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_constraint_assignment_is_partition(self, data):
        hierarchy = data.draw(random_tree())
        constraints = data.draw(linear_constraints_for(hierarchy.n_atoms))
        assign_constraints(hierarchy, constraints)
        assigned = [c for node in hierarchy.nodes for c in node.constraints]
        assert sorted(map(id, assigned)) == sorted(map(id, constraints))
        # containment: every constraint's atoms inside its node's atom set
        for node in hierarchy.nodes:
            atom_set = set(node.atoms.tolist())
            for c in node.constraints:
                assert set(c.atoms) <= atom_set
        # minimality: no single child contains the constraint entirely
        for node in hierarchy.nodes:
            for c in node.constraints:
                for child in node.children:
                    assert not set(c.atoms) <= set(child.atoms.tolist())


class TestCombineProperties:
    @given(seed=st.integers(0, 10_000), split=st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_combine_equals_sequential_on_random_splits(self, seed, split):
        rng = np.random.default_rng(seed)
        prior = StructureEstimate.from_coords(rng.normal(0, 1, (2, 3)), sigma=1.0)
        cons = []
        for _ in range(5):
            a = rng.normal(size=(1, 6))
            cons.append(
                LinearConstraint((0, 1), a, rng.normal(size=1), np.array([0.4]))
            )
        set1, set2 = cons[:split], cons[split:]
        post1 = apply_batch(prior, ConstraintBatch(tuple(set1)))
        post2 = (
            apply_batch(prior, ConstraintBatch(tuple(set2))) if set2 else prior.copy()
        )
        combined = combine_estimates(prior, post1, post2)
        sequential = (
            apply_batch(post1, ConstraintBatch(tuple(set2))) if set2 else post1
        )
        assert np.allclose(combined.mean, sequential.mean, atol=1e-7)
        assert np.allclose(combined.covariance, sequential.covariance, atol=1e-7)
