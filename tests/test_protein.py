"""Tests for the protein workload generator."""

import numpy as np
import pytest

from repro.core.hier_solver import HierarchicalSolver
from repro.core.update import UpdateOptions
from repro.errors import HierarchyError
from repro.molecules.protein import (
    DEFAULT_ELEMENTS,
    SIDECHAIN_SIZES,
    SecondaryElement,
    build_protein,
)
from repro.molecules.superpose import superposed_rmsd


@pytest.fixture(scope="module")
def protein():
    p = build_protein()
    p.assign()
    return p


class TestGeneration:
    def test_residue_count(self, protein):
        assert protein.metadata["n_residues"] == sum(e.n_residues for e in DEFAULT_ELEMENTS)

    def test_atoms_match_composition(self, protein):
        from repro.molecules.protein import BACKBONE_ATOMS, RESIDUE_CYCLE

        n_res = protein.metadata["n_residues"]
        expected = sum(
            BACKBONE_ATOMS + SIDECHAIN_SIZES[RESIDUE_CYCLE[r % len(RESIDUE_CYCLE)]]
            for r in range(n_res)
        )
        assert protein.n_atoms == expected

    def test_hierarchy_three_levels(self, protein):
        assert protein.hierarchy.height() == 2
        assert len(protein.hierarchy.root.children) == len(DEFAULT_ELEMENTS)

    def test_leaves_are_residues(self, protein):
        assert len(protein.hierarchy.leaves()) == protein.metadata["n_residues"]

    def test_most_constraints_local(self, protein):
        assert protein.hierarchy.leaf_constraint_fraction() > 0.35

    def test_deterministic(self):
        a, b = build_protein(seed=3), build_protein(seed=3)
        assert np.array_equal(a.true_coords, b.true_coords)

    def test_custom_elements(self):
        p = build_protein(elements=(SecondaryElement("helix", 5),))
        assert p.metadata["n_elements"] == 1
        assert p.metadata["n_residues"] == 5

    def test_empty_elements_rejected(self):
        with pytest.raises(HierarchyError):
            build_protein(elements=())

    def test_targets_match_geometry(self, protein):
        coords = protein.true_coords
        for c in protein.constraints[::50]:
            d = np.linalg.norm(coords[c.i] - coords[c.j])
            assert c.target[0] == pytest.approx(d)

    def test_recommended_options_present(self, protein):
        assert protein.metadata["recommended_options"] == {"local_iterations": 2}


class TestSolving:
    def test_iterated_annealed_solve_converges(self, protein):
        options = UpdateOptions(local_iterations=2)
        solver = HierarchicalSolver(protein.hierarchy, batch_size=16, options=options)
        est = protein.initial_estimate(0)
        report = solver.solve(
            est,
            max_cycles=16,
            tol=1e-3,
            gauge_invariant=True,
            anneal=protein.metadata["recommended_anneal"],
        )
        coords = report.estimate.coords
        residuals = [abs(c.residual(coords)[0]) for c in protein.constraints]
        assert float(np.mean(residuals)) < 0.05

    def test_local_shape_recovered_per_element(self, protein):
        """The protein's global shape is deliberately under-determined (few
        loose element contacts — the realistic NOE regime), so the honest
        success criterion is *local*: each secondary-structure element's
        internal shape must be recovered nearly exactly."""
        options = UpdateOptions(local_iterations=2)
        solver = HierarchicalSolver(protein.hierarchy, batch_size=16, options=options)
        est = protein.initial_estimate(0)
        report = solver.solve(
            est,
            max_cycles=16,
            tol=1e-3,
            gauge_invariant=True,
            anneal=protein.metadata["recommended_anneal"],
        )
        for element in protein.hierarchy.root.children:
            atoms = element.atoms
            before = superposed_rmsd(
                est.coords[atoms], protein.true_coords[atoms]
            )
            after = superposed_rmsd(
                report.estimate.coords[atoms], protein.true_coords[atoms]
            )
            assert after < max(0.65 * before, 0.1), element.name
