"""Tests for the experiment harnesses (quick configurations)."""

import numpy as np
import pytest

from repro.experiments import paper_data, report
from repro.experiments.ablation_decompose import format_decompose, run_decompose_ablation
from repro.experiments.ablation_dynamic import format_dynamic, run_dynamic_ablation
from repro.experiments.ablation_ordering import format_ordering, run_ordering_ablation
from repro.experiments.exp_table1 import figure5_series, format_table1, run_table1
from repro.experiments.exp_table2 import (
    Table2Result,
    figure6_series,
    format_table2,
    run_table2,
)
from repro.experiments.exp_parallel import EXHIBITS, figure_series
from repro.molecules.rna import build_helix


class TestPaperData:
    def test_table1_shape(self):
        assert paper_data.TABLE1.shape == (5,)
        assert paper_data.TABLE1["speedup"][-1] == pytest.approx(30.09)

    def test_table2_grid(self):
        assert paper_data.TABLE2_TIMES.shape == (10, 5)
        # the paper's batch-16 optimum
        col = paper_data.TABLE2_TIMES[:, 0]
        assert paper_data.TABLE2_BATCH_DIMS[int(np.argmin(col))] == 16

    def test_speedup_tables_monotone_time(self):
        for name in ("table3", "table4", "table5", "table6"):
            t = paper_data.speedup_table(name)
            assert np.all(np.diff(t["time"]) < 0)

    def test_processor_counts(self):
        assert paper_data.processor_counts("table3")[0] == 1
        assert paper_data.processor_counts("table3")[-1] == 32
        assert paper_data.processor_counts("table5")[-1] == 16

    def test_exhibits_registry(self):
        assert set(EXHIBITS) == {"table3", "table4", "table5", "table6"}


class TestReportHelpers:
    def test_render_table_basic(self):
        text = report.render_table(["a", "b"], [(1, 2.5), (10, 0.25)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 5

    def test_growth_exponent_quadratic(self):
        x = np.array([1.0, 2, 4, 8])
        assert report.growth_exponent(x, x**2) == pytest.approx(2.0)

    def test_monotone_with_slack(self):
        assert report.is_monotone_increasing([1.0, 0.99, 1.5], slack=0.05)
        assert not report.is_monotone_increasing([1.0, 0.5], slack=0.05)

    def test_u_shape_minimum(self):
        assert report.u_shape_minimum([1, 2, 4, 8], [5.0, 2.0, 3.0, 9.0]) == 2

    def test_relative_series(self):
        assert np.allclose(report.relative_series([2.0, 4.0]), [1.0, 2.0])


class TestTable1Harness:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_table1(lengths=(1, 2))

    def test_row_fields(self, rows):
        assert rows[0].atoms == 43
        assert rows[1].atoms == 86
        assert rows[0].flat_total > 0 and rows[0].hier_total > 0

    def test_speedup_positive(self, rows):
        assert all(r.speedup > 0 for r in rows)

    def test_format(self, rows):
        text = format_table1(rows)
        assert "speedup" in text and "43" in text

    def test_figure5_series(self, rows):
        series = figure5_series(rows)
        assert series["length"] == [1.0, 2.0]
        assert len(series["flat_per_constraint"]) == 2


class TestTable2Harness:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table2(lengths=(1, 2), batch_dims=(4, 8, 32), max_rows_per_cell=128)

    def test_grid_shape(self, result):
        assert result.times.shape == (3, 2)
        assert result.node_sizes == [43, 86]

    def test_times_positive(self, result):
        assert np.all(result.times > 0)

    def test_larger_nodes_slower(self, result):
        # Allow small timing jitter at these micro-scale cells.
        assert np.all(result.times[:, 1] >= 0.8 * result.times[:, 0])

    def test_model_fitted(self, result):
        assert result.model is not None
        assert result.model.satisfies_paper_checks()

    def test_format(self, result):
        text = format_table2(result)
        assert "Equation 1" in text

    def test_figure6_series(self, result):
        series = figure6_series(result)
        assert series["time_vs_batch"].shape == (3, 2)
        assert series["time_vs_size"].shape == (2, 3)

    def test_best_batch_per_size(self, result):
        best = result.best_batch_per_size()
        assert set(best) == {43, 86}
        assert all(b in (4, 8, 32) for b in best.values())


class TestOrderingAblation:
    def test_runs_all_strategies(self):
        problem = build_helix(1)
        results = run_ordering_ablation(
            problem, strategies=("given", "random"), max_cycles=3
        )
        assert [r.strategy for r in results] == ["given", "random"]
        assert all(len(r.report.deltas) <= 3 for r in results)
        assert "strategy" in format_ordering(results)


class TestDecomposeAblation:
    def test_paper_hierarchy_efficient(self):
        results = run_decompose_ablation(
            build_helix(2), methods=("paper", "rcb"), max_leaf_atoms=12
        )
        by = {r.method: r for r in results}
        # the paper's domain decomposition must not lose to blind RCB
        assert by["paper"].cycle_flops <= by["rcb"].cycle_flops * 1.05
        assert "leaf_frac" in format_decompose(results)


class TestDynamicAblation:
    def test_rows_and_format(self):
        problem = build_helix(2)
        problem.assign()
        results = run_dynamic_ablation(problem, processor_counts=(2, 3, 4))
        assert [r.n_processors for r in results] == [2, 3, 4]
        assert all(r.static_time > 0 and r.dynamic_time > 0 for r in results)
        assert "improvement" in format_dynamic(results)


class TestCombinationExperiment:
    def test_rows_and_crossover(self):
        from repro.experiments.exp_combination import (
            crossover_rows_per_dim,
            format_combination,
            run_combination_experiment,
        )

        rows = run_combination_experiment(
            n_atoms=10, row_multipliers=(0.5, 2.0, 8.0)
        )
        assert [r.constraint_rows for r in rows] == [15, 60, 240]
        # speedup grows monotonically with the constraint volume
        speedups = [r.two_way_speedup for r in rows]
        assert speedups == sorted(speedups)
        assert "Constraint-splitting" in format_combination(rows)
        cross = crossover_rows_per_dim(rows)
        assert cross is None or cross > 1.0

    def test_combine_flops_independent_of_rows(self):
        from repro.experiments.exp_combination import run_combination_experiment

        rows = run_combination_experiment(n_atoms=8, row_multipliers=(1.0, 4.0))
        assert rows[0].combine_flops == pytest.approx(rows[1].combine_flops, rel=0.01)


class TestUncertaintyValidation:
    def test_calibrated_on_small_ensemble(self):
        from repro.experiments.exp_uncertainty import (
            format_uncertainty,
            run_uncertainty_validation,
        )

        v = run_uncertainty_validation(n_trials=10, seed=3)
        assert v.n_trials == 10
        assert v.z_scores.shape == (10, 15)
        assert 0.5 < v.calibration_ratio < 2.0
        assert "calibration ratio" in format_uncertainty(v)

    def test_deterministic_per_seed(self):
        from repro.experiments.exp_uncertainty import run_uncertainty_validation

        a = run_uncertainty_validation(n_trials=3, seed=5)
        b = run_uncertainty_validation(n_trials=3, seed=5)
        assert np.array_equal(a.z_scores, b.z_scores)
