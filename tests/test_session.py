"""Tests for the incremental dirty-path re-solve session.

The load-bearing property throughout: a warm re-solve restricted to the
dirty path is *bit-identical* to a cold full pass over the edited
problem from the same warm start, on every backend.
"""

import numpy as np
import pytest

from repro.constraints import DistanceConstraint
from repro.core.hier_solver import HierarchicalSolver
from repro.core.hierarchy import assign_constraints
from repro.core.session import SessionResolveResult, SolveSession
from repro.core.state import StructureEstimate
from repro.errors import CheckpointError, HierarchyError, SessionError
from repro.faults import CheckpointManager, SessionStore
from repro.molecules.rna import build_helix
from repro.parallel import ProcessExecutor, ThreadExecutor


def _leaf_delta(problem, leaf_index: int = 0) -> DistanceConstraint:
    """A constraint wholly inside one leaf (the minimal dirty path)."""
    leaf = problem.hierarchy.leaves()[leaf_index]
    i, j = int(leaf.atoms[0]), int(leaf.atoms[-1])
    d = float(np.linalg.norm(problem.true_coords[i] - problem.true_coords[j]))
    return DistanceConstraint(i, j, d, 0.01)


def _cold_reference(session: SolveSession, length: int = 2) -> StructureEstimate:
    """Full cold pass over the session's *current* constraint set.

    Built on a fresh hierarchy with ``assign_constraints`` — the code
    path a from-scratch solve would take — starting from the session's
    warm-start cycle input.  This is the oracle every warm dirty-path
    result must match bitwise.
    """
    problem = build_helix(length)
    constraints = list(session.constraints.values())
    assign_constraints(problem.hierarchy, constraints)
    solver = HierarchicalSolver(
        problem.hierarchy, session.batch_size, session.options
    )
    start = StructureEstimate(
        session._cycle_input.mean.copy(), session._cycle_input.covariance.copy()
    )
    return solver.run_cycle(start).estimate


def _assert_estimates_equal(a: StructureEstimate, b: StructureEstimate) -> None:
    assert np.array_equal(a.mean, b.mean)
    assert np.array_equal(a.covariance, b.covariance)


@pytest.fixture
def booted_session(helix2_problem):
    """A serial session bootstrapped to a warm state (3 cycles)."""
    est = helix2_problem.initial_estimate(0)
    session = SolveSession(helix2_problem.hierarchy, helix2_problem.constraints)
    session.solve(est, max_cycles=3, tol=0.0)
    return helix2_problem, session


class TestDeltaRouting:
    def test_add_marks_leaf_to_root_path(self, booted_session):
        problem, session = booted_session
        delta = _leaf_delta(problem)
        (cid,) = session.add_constraints([delta])
        leaf = problem.hierarchy.leaves()[0]
        expected = {n.nid for n in problem.hierarchy.ancestor_path(leaf)}
        assert session.dirty_nids == expected
        assert session.owner_of(cid) == leaf.nid

    def test_cross_leaf_constraint_owned_by_lca(self, booted_session):
        problem, session = booted_session
        leaves = problem.hierarchy.leaves()
        i, j = int(leaves[0].atoms[0]), int(leaves[-1].atoms[0])
        (cid,) = session.add_constraints([DistanceConstraint(i, j, 5.0, 0.1)])
        lca = problem.hierarchy.lowest_common_ancestor(leaves[0], leaves[-1])
        assert session.owner_of(cid) == lca.nid

    def test_remove_marks_owner_path(self, booted_session):
        problem, session = booted_session
        (cid,) = session.add_constraints([_leaf_delta(problem)])
        session.resolve()
        assert session.dirty_nids == frozenset()
        session.remove_constraints([cid])
        leaf = problem.hierarchy.leaves()[0]
        expected = {n.nid for n in problem.hierarchy.ancestor_path(leaf)}
        assert session.dirty_nids == expected
        assert cid not in session.constraints

    def test_update_across_owners_marks_both_paths(self, booted_session):
        problem, session = booted_session
        (cid,) = session.add_constraints([_leaf_delta(problem, leaf_index=0)])
        session.resolve()
        moved = _leaf_delta(problem, leaf_index=1)
        session.update_constraints({cid: moved})
        leaves = problem.hierarchy.leaves()
        expected = {
            n.nid for n in problem.hierarchy.ancestor_path(leaves[0])
        } | {n.nid for n in problem.hierarchy.ancestor_path(leaves[1])}
        assert session.dirty_nids == expected
        assert session.owner_of(cid) == leaves[1].nid

    def test_unknown_cid_rejected(self, booted_session):
        _, session = booted_session
        missing = session._next_cid + 5
        with pytest.raises(SessionError, match="unknown constraint id"):
            session.remove_constraints([missing])
        with pytest.raises(SessionError, match="unknown constraint id"):
            session.update_constraints({missing: DistanceConstraint(0, 1, 1.0, 0.1)})


class TestWarmResolveBitIdentity:
    def test_add_matches_cold_solve_of_edited_problem(self, booted_session):
        problem, session = booted_session
        session.add_constraints([_leaf_delta(problem)])
        result = session.resolve()
        assert result.n_dirty < len(problem.hierarchy.nodes)
        assert result.cache_hits > 0
        _assert_estimates_equal(result.estimate, _cold_reference(session))

    def test_dirty_scope_matches_full_scope(self, booted_session):
        problem, session = booted_session
        session.add_constraints([_leaf_delta(problem)])
        warm = session.resolve()
        # Replaying every node from the same warm start must reproduce
        # the dirty-path result exactly.
        full = session.resolve(scope="full")
        assert full.n_dirty == len(problem.hierarchy.nodes)
        _assert_estimates_equal(warm.estimate, full.estimate)

    def test_remove_matches_cold_solve(self, booted_session):
        problem, session = booted_session
        # Drop one of the original constraints.
        cid = next(iter(session.constraints))
        session.remove_constraints([cid])
        result = session.resolve()
        _assert_estimates_equal(result.estimate, _cold_reference(session))

    def test_stacked_deltas_compose(self, booted_session):
        problem, session = booted_session
        for leaf_index in (0, 1, 2):
            session.add_constraints([_leaf_delta(problem, leaf_index)])
            result = session.resolve()
            _assert_estimates_equal(result.estimate, _cold_reference(session))

    def test_update_in_place_matches_cold_solve(self, booted_session):
        problem, session = booted_session
        (cid,) = session.add_constraints([_leaf_delta(problem)])
        session.resolve()
        loosened = DistanceConstraint(
            session.constraints[cid].i, session.constraints[cid].j,
            session.constraints[cid].distance, 0.5,
        )
        session.update_constraints({cid: loosened})
        result = session.resolve()
        _assert_estimates_equal(result.estimate, _cold_reference(session))

    def test_empty_dirty_resolve_is_noop(self, booted_session):
        _, session = booted_session
        before = session.estimate
        result = session.resolve()  # nothing staged
        assert result.n_dirty == 0
        _assert_estimates_equal(result.estimate, before)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_parallel_backends_match_serial(self, helix2_problem, backend):
        est = helix2_problem.initial_estimate(0)
        executor = (
            ThreadExecutor(4) if backend == "thread" else ProcessExecutor(2)
        )
        with executor, SolveSession(
            helix2_problem.hierarchy, helix2_problem.constraints,
            executor=executor,
        ) as session:
            session.solve(est, max_cycles=3, tol=0.0)
            session.add_constraints([_leaf_delta(helix2_problem)])
            result = session.resolve()
            _assert_estimates_equal(result.estimate, _cold_reference(session))

    def test_result_metadata(self, booted_session):
        problem, session = booted_session
        session.add_constraints([_leaf_delta(problem)])
        result = session.resolve()
        assert isinstance(result, SessionResolveResult)
        assert result.scope == "dirty"
        assert result.generation == session.generation
        assert result.dirty_nids == tuple(sorted(result.dirty_nids))
        assert result.seconds > 0


class TestSharedMemoryPinning:
    def test_clean_segments_survive_resolves(self, helix2_problem):
        est = helix2_problem.initial_estimate(0)
        with ProcessExecutor(2) as executor, SolveSession(
            helix2_problem.hierarchy, helix2_problem.constraints,
            executor=executor,
        ) as session:
            session.solve(est, max_cycles=2, tol=0.0)
            plane = session._plane
            assert plane is not None
            for node in helix2_problem.hierarchy.nodes:
                assert plane.has_pinned(node.nid)

            session.add_constraints([_leaf_delta(helix2_problem, leaf_index=0)])
            dirty = set(session.dirty_nids)
            clean_leaf = next(
                n for n in helix2_problem.hierarchy.leaves() if n.nid not in dirty
            )
            name_before = plane.pinned_name(clean_leaf.nid)
            gen_before = plane.pinned_generation(clean_leaf.nid)
            result = session.resolve()

            # The clean leaf's physical segment was reused, not rewritten:
            # same shared-memory name, generation tag untouched.
            assert plane.pinned_name(clean_leaf.nid) == name_before
            assert plane.pinned_generation(clean_leaf.nid) == gen_before
            # Every recomputed node carries the new generation.
            for nid in result.dirty_nids:
                assert plane.pinned_generation(nid) == result.generation
            # No segment leaks: exactly one live segment per node.
            assert len(plane) == len(helix2_problem.hierarchy.nodes)


class TestPersistence:
    def test_store_roundtrip_resolves_identically(self, helix2_problem, tmp_path):
        est = helix2_problem.initial_estimate(0)
        session = SolveSession(
            helix2_problem.hierarchy, helix2_problem.constraints, store=tmp_path
        )
        session.solve(est, max_cycles=3, tol=0.0)
        session.add_constraints([_leaf_delta(helix2_problem)])
        session.resolve()

        # A twin session reloaded from disk sees the same warm state and,
        # given the same further edit, must land on the same bits.
        twin = SolveSession.load(tmp_path)
        assert twin.generation == session.generation
        _assert_estimates_equal(
            twin.cache.load(helix2_problem.hierarchy.root.nid),
            session.cache.load(helix2_problem.hierarchy.root.nid),
        )
        twin.add_constraints([_leaf_delta(helix2_problem, leaf_index=1)])
        session.add_constraints([_leaf_delta(helix2_problem, leaf_index=1)])
        _assert_estimates_equal(
            twin.resolve().estimate, session.resolve().estimate
        )

    def test_load_defaults_config_from_manifest(self, helix2_problem, tmp_path):
        est = helix2_problem.initial_estimate(0)
        session = SolveSession(
            helix2_problem.hierarchy, helix2_problem.constraints,
            batch_size=8, store=tmp_path,
        )
        session.solve(est, max_cycles=2, tol=0.0)
        loaded = SolveSession.load(tmp_path)
        assert loaded.batch_size == 8
        assert loaded.options.kernel_impl == session.options.kernel_impl
        assert len(loaded.constraints) == len(session.constraints)

    def test_killed_resolve_resumes_without_redoing_done_nodes(
        self, helix2_problem, tmp_path
    ):
        est = helix2_problem.initial_estimate(0)
        session = SolveSession(
            helix2_problem.hierarchy, helix2_problem.constraints, store=tmp_path
        )
        session.solve(est, max_cycles=3, tol=0.0)
        session.add_constraints([_leaf_delta(helix2_problem)])
        staged = set(session.dirty_nids)

        original = session.solver._solve_node
        seen = {"n": 0}

        def bombed(node, *args, **kwargs):
            if seen["n"] == 2:
                raise RuntimeError("simulated kill")
            seen["n"] += 1
            return original(node, *args, **kwargs)

        session.solver._solve_node = bombed
        with pytest.raises(RuntimeError, match="simulated kill"):
            session.resolve()

        resumed = SolveSession.load(tmp_path)
        # Exactly the staged nodes that had not completed remain dirty.
        remaining = resumed.dirty_nids
        assert remaining < frozenset(staged)
        assert len(remaining) == len(staged) - 2
        result = resumed.resolve()
        assert set(result.dirty_nids) == set(remaining)
        _assert_estimates_equal(result.estimate, _cold_reference(resumed))

    def test_resume_never_replays_stale_posterior_for_edited_node(
        self, helix2_problem, tmp_path
    ):
        """The satellite guarantee: after a mid-re-solve kill, the edited
        leaf itself must be among the nodes redone on resume — its cached
        posterior predates the edit."""
        est = helix2_problem.initial_estimate(0)
        session = SolveSession(
            helix2_problem.hierarchy, helix2_problem.constraints, store=tmp_path
        )
        session.solve(est, max_cycles=2, tol=0.0)
        delta = _leaf_delta(helix2_problem)
        session.add_constraints([delta])
        edited_leaf = helix2_problem.hierarchy.leaves()[0].nid

        def bombed(node, *args, **kwargs):
            raise RuntimeError("killed before any node completed")

        session.solver._solve_node = bombed
        with pytest.raises(RuntimeError):
            session.resolve()

        resumed = SolveSession.load(tmp_path)
        assert edited_leaf in resumed.dirty_nids
        result = resumed.resolve()
        _assert_estimates_equal(result.estimate, _cold_reference(resumed))


class TestCheckpointInterplay:
    """The solver-level CheckpointManager vs constraint edits.

    The session layer persists through SessionStore; the classic per-node
    checkpoint remains for plain solves — but it must never replay
    ``completed_cycle_estimate`` state computed under a different
    constraint set.
    """

    def test_dirty_pass_with_checkpoint_rejected(self, helix2_problem, tmp_path):
        solver = HierarchicalSolver(
            helix2_problem.hierarchy, 16, checkpoint=CheckpointManager(tmp_path)
        )
        est = helix2_problem.initial_estimate(0)
        with pytest.raises(HierarchyError, match="SolveSession"):
            solver.run_cycle(est, dirty=frozenset({0}), cache={})

    def test_bind_token_discards_stale_artifacts(self, helix2_problem, tmp_path):
        from repro.io import assigned_constraints_token

        est = helix2_problem.initial_estimate(0)
        HierarchicalSolver(
            helix2_problem.hierarchy, 16, checkpoint=CheckpointManager(tmp_path)
        ).run_cycle(est)
        token = assigned_constraints_token(helix2_problem.hierarchy)

        same = CheckpointManager(tmp_path)
        same.bind(helix2_problem.n_atoms, constraints_token=token)
        assert same.completed_cycle_estimate(0) is not None

        edited = CheckpointManager(tmp_path)
        edited.bind(helix2_problem.n_atoms, constraints_token="sha256:other")
        assert edited.completed_cycle_estimate(0) is None

    def test_interrupted_solve_with_edited_constraints_restarts_clean(
        self, helix2_problem, tmp_path
    ):
        est = helix2_problem.initial_estimate(0)
        killed = HierarchicalSolver(
            helix2_problem.hierarchy, 16, checkpoint=CheckpointManager(tmp_path)
        )
        n_nodes = len(helix2_problem.hierarchy)
        original = killed._solve_node
        seen = {"n": 0}

        def bombed(node, *args, **kwargs):
            if seen["n"] == n_nodes + 4:  # dies inside cycle 2
                raise RuntimeError("simulated kill")
            seen["n"] += 1
            return original(node, *args, **kwargs)

        killed._solve_node = bombed
        with pytest.raises(RuntimeError):
            killed.solve(est, max_cycles=3, tol=0.0)

        # Edit the problem, then resume against the same directory.
        edited = list(helix2_problem.constraints) + [_leaf_delta(helix2_problem)]
        fresh = build_helix(2)
        assign_constraints(fresh.hierarchy, edited)
        baseline = HierarchicalSolver(fresh.hierarchy, 16).solve(
            est, max_cycles=3, tol=0.0
        )

        resumed_problem = build_helix(2)
        assign_constraints(resumed_problem.hierarchy, edited)
        resumed = HierarchicalSolver(
            resumed_problem.hierarchy, 16, checkpoint=CheckpointManager(tmp_path)
        )
        report = resumed.solve(est, max_cycles=3, tol=0.0)
        # The stale cycle-1 output (computed without the new constraint)
        # was discarded, not replayed.
        assert resumed.checkpoint.cycles_replayed == 0
        _assert_estimates_equal(report.estimate, baseline.estimate)
        assert report.deltas == pytest.approx(baseline.deltas)


class TestSessionErrors:
    def test_resolve_before_solve_rejected(self, helix2_problem):
        session = SolveSession(helix2_problem.hierarchy, helix2_problem.constraints)
        with pytest.raises(SessionError, match="no warm state"):
            session.resolve()

    def test_bad_scope_rejected(self, booted_session):
        _, session = booted_session
        with pytest.raises(SessionError, match="scope"):
            session.resolve(scope="everything")

    def test_constraint_outside_hierarchy_rejected(self, booted_session):
        problem, session = booted_session
        with pytest.raises(HierarchyError):
            session.add_constraints(
                [DistanceConstraint(0, problem.n_atoms + 7, 1.0, 0.1)]
            )

    def test_dirty_cycle_without_cache_rejected(self, helix2_problem):
        solver = HierarchicalSolver(helix2_problem.hierarchy, 16)
        est = helix2_problem.initial_estimate(0)
        with pytest.raises(HierarchyError, match="cache"):
            solver.run_cycle(est, dirty=frozenset({0}))

    def test_load_without_manifest_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="manifest"):
            SolveSession.load(SessionStore(tmp_path))


class TestKernelPolicy:
    """Table 1/Figure 5 run the fast kernels; Table 2 and the simulator
    calibration stay pinned to the reference kernels (Equation 1's rates
    are defined against the published kernel mix)."""

    def test_table1_defaults_to_fast(self):
        import repro.experiments.exp_table1 as exp_table1

        impls = []
        original = exp_table1.FlatSolver

        class Spy(original):
            def __init__(self, constraints, batch_size=16, options=None, **kw):
                impls.append(options.kernel_impl)
                super().__init__(
                    constraints, batch_size=batch_size, options=options, **kw
                )

        exp_table1.FlatSolver = Spy
        try:
            exp_table1.run_table1(lengths=(1,))
        finally:
            exp_table1.FlatSolver = original
        assert impls == ["fast"]

    def test_table2_pinned_to_reference(self):
        import repro.experiments.exp_table2 as exp_table2

        impls = []
        original = exp_table2.FlatSolver

        class Spy(original):
            def __init__(self, constraints, batch_size=16, options=None, **kw):
                impls.append(options.kernel_impl)
                super().__init__(
                    constraints, batch_size=batch_size, options=options, **kw
                )

        exp_table2.FlatSolver = Spy
        try:
            exp_table2.run_table2(
                lengths=(1,), batch_dims=(4, 8), max_rows_per_cell=32, fit=False
            )
        finally:
            exp_table2.FlatSolver = original
        assert impls and set(impls) == {"reference"}

    def test_calibration_pinned_to_reference(self):
        import inspect

        from repro.experiments import calibration

        src = inspect.getsource(calibration.record_cycle)
        assert 'kernel_impl="reference"' in src
