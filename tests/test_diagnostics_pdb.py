"""Tests for residual diagnostics and PDB output."""

import numpy as np
import pytest

from repro.constraints import DistanceConstraint, PositionConstraint
from repro.core.diagnostics import format_residual_report, residual_report
from repro.core.state import StructureEstimate
from repro.errors import DimensionError
from repro.molecules.pdb import PDBError, bfactor_to_sigma, read_pdb, write_pdb


@pytest.fixture
def consistent_setup(rng):
    coords = rng.normal(0, 2, (4, 3))
    constraints = []
    for i in range(3):
        d = float(np.linalg.norm(coords[i] - coords[i + 1]))
        constraints.append(DistanceConstraint(i, i + 1, d + rng.normal(0, 0.05), 0.05**2))
    constraints.append(PositionConstraint(0, coords[0], 0.1))
    estimate = StructureEstimate.from_coords(coords, sigma=1.0)
    return estimate, constraints


class TestResidualReport:
    def test_groups_by_type(self, consistent_setup):
        estimate, constraints = consistent_setup
        report = residual_report(estimate, constraints)
        assert set(report.groups) == {"DistanceConstraint", "PositionConstraint"}
        assert report.groups["DistanceConstraint"].count == 3
        assert report.groups["PositionConstraint"].rows == 3

    def test_consistent_data_low_chi2(self, consistent_setup):
        estimate, constraints = consistent_setup
        report = residual_report(estimate, constraints)
        assert report.consistent
        assert report.overall_reduced_chi2 < 3.0

    def test_outlier_flagged(self, consistent_setup):
        estimate, constraints = consistent_setup
        bad = DistanceConstraint(0, 2, 50.0, 0.01)  # wildly inconsistent
        report = residual_report(estimate, constraints + [bad])
        assert report.outliers
        idx, name, z = report.outliers[0]
        assert idx == len(constraints)
        assert name == "DistanceConstraint"
        assert z > 4.0
        assert not report.consistent

    def test_no_constraints_rejected(self, consistent_setup):
        estimate, _ = consistent_setup
        with pytest.raises(DimensionError):
            residual_report(estimate, [])

    def test_format(self, consistent_setup):
        estimate, constraints = consistent_setup
        text = format_residual_report(residual_report(estimate, constraints))
        assert "chi2/dof" in text
        assert "no outliers flagged" in text

    def test_format_lists_outliers(self, consistent_setup):
        estimate, constraints = consistent_setup
        bad = DistanceConstraint(0, 2, 50.0, 0.01)
        text = format_residual_report(residual_report(estimate, constraints + [bad]))
        assert "outliers" in text and "z=" in text


class TestPDB:
    def test_roundtrip_coords_and_bfactors(self, tmp_path, rng):
        coords = rng.normal(0, 5, (6, 3))
        est = StructureEstimate.from_coords(coords, sigma=0.7)
        path = tmp_path / "model.pdb"
        write_pdb(path, est)
        read_coords, bfactors = read_pdb(path)
        assert np.allclose(read_coords, coords, atol=2e-3)  # 3-decimal columns
        sigma = bfactor_to_sigma(bfactors)
        expected = est.atom_uncertainty()
        assert np.allclose(sigma, expected, rtol=0.01)

    def test_title_written(self, tmp_path):
        est = StructureEstimate.from_coords(np.zeros((2, 3)), sigma=1.0)
        path = tmp_path / "t.pdb"
        write_pdb(path, est, title="my molecule")
        assert "my molecule" in path.read_text()
        assert path.read_text().rstrip().endswith("END")

    def test_read_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.pdb"
        path.write_text("REMARK nothing here\n")
        with pytest.raises(PDBError, match="no ATOM"):
            read_pdb(path)

    def test_read_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.pdb"
        path.write_text("ATOM  broken line\n")
        with pytest.raises(PDBError, match="malformed"):
            read_pdb(path)

    def test_bfactor_inversion_validates(self):
        with pytest.raises(DimensionError):
            bfactor_to_sigma(np.array([-1.0]))

    def test_large_structure_serials_wrap(self, tmp_path):
        est = StructureEstimate.from_coords(np.zeros((3, 3)), sigma=1.0)
        path = tmp_path / "w.pdb"
        write_pdb(path, est)
        coords, _ = read_pdb(path)
        assert coords.shape == (3, 3)
