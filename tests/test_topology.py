"""Tests for the mesh interconnect topology model."""

import pytest
from dataclasses import replace

from repro.errors import SimulationError
from repro.machine import DASH, simulate_solve
from repro.machine.topology import (
    average_remote_hops,
    clusters_of_range,
    hop_cost_multiplier,
    hop_distance,
    mesh_coords,
    mesh_shape,
)


class TestMeshGeometry:
    def test_shape_most_square(self):
        assert mesh_shape(8) == (2, 4)
        assert mesh_shape(16) == (4, 4)
        assert mesh_shape(4) == (2, 2)
        assert mesh_shape(1) == (1, 1)
        assert mesh_shape(7) == (1, 7)

    def test_invalid_shape(self):
        with pytest.raises(SimulationError):
            mesh_shape(0)

    def test_coords_row_major(self):
        assert mesh_coords(0, (2, 4)) == (0, 0)
        assert mesh_coords(3, (2, 4)) == (0, 3)
        assert mesh_coords(4, (2, 4)) == (1, 0)
        assert mesh_coords(7, (2, 4)) == (1, 3)

    def test_coords_out_of_range(self):
        with pytest.raises(SimulationError):
            mesh_coords(8, (2, 4))

    def test_hop_distance_manhattan(self):
        shape = (2, 4)
        assert hop_distance(0, 0, shape) == 0
        assert hop_distance(0, 1, shape) == 1
        assert hop_distance(0, 4, shape) == 1
        assert hop_distance(0, 7, shape) == 4
        assert hop_distance(3, 4, shape) == 4

    def test_hop_symmetric(self):
        shape = mesh_shape(8)
        for a in range(8):
            for b in range(8):
                assert hop_distance(a, b, shape) == hop_distance(b, a, shape)


class TestGroupHops:
    def test_clusters_of_range(self):
        assert clusters_of_range((0, 4), 4) == [0]
        assert clusters_of_range((0, 8), 4) == [0, 1]
        assert clusters_of_range((2, 6), 4) == [0, 1]
        assert clusters_of_range((0, 32), 4) == list(range(8))

    def test_single_cluster_no_remote_hops(self):
        assert average_remote_hops((0, 4), 4, 8) == 0.0

    def test_adjacent_pair_one_hop(self):
        assert average_remote_hops((0, 8), 4, 8) == pytest.approx(1.0)

    def test_hops_grow_with_span(self):
        small = average_remote_hops((0, 8), 4, 8)
        large = average_remote_hops((0, 32), 4, 8)
        assert large > small

    def test_multiplier_floor(self):
        assert hop_cost_multiplier((0, 8), 4, 8, 0.5) == 1.0

    def test_multiplier_grows(self):
        full = hop_cost_multiplier((0, 32), 4, 8, 0.5)
        assert full > 1.0

    def test_zero_penalty_is_uniform(self):
        assert hop_cost_multiplier((0, 32), 4, 8, 0.0) == 1.0


class TestMeshSimulation:
    def test_mesh_slower_than_uniform_at_scale(self, helix2_problem):
        from repro.core.hier_solver import HierarchicalSolver

        cycle = HierarchicalSolver(helix2_problem.hierarchy, batch_size=16).run_cycle(
            helix2_problem.initial_estimate(0)
        )
        uniform = simulate_solve(cycle, helix2_problem.hierarchy, DASH(), 32)
        mesh_cfg = replace(DASH(), topology="mesh", name="DASH-mesh")
        mesh = simulate_solve(cycle, helix2_problem.hierarchy, mesh_cfg, 32)
        assert mesh.work_time > uniform.work_time

    def test_mesh_identical_at_one_processor(self, helix2_problem):
        from repro.core.hier_solver import HierarchicalSolver

        cycle = HierarchicalSolver(helix2_problem.hierarchy, batch_size=16).run_cycle(
            helix2_problem.initial_estimate(0)
        )
        uniform = simulate_solve(cycle, helix2_problem.hierarchy, DASH(), 1)
        mesh_cfg = replace(DASH(), topology="mesh", name="DASH-mesh")
        mesh = simulate_solve(cycle, helix2_problem.hierarchy, mesh_cfg, 1)
        assert mesh.work_time == pytest.approx(uniform.work_time)

    def test_unknown_topology_rejected(self):
        with pytest.raises(SimulationError, match="topology"):
            replace(DASH(), topology="torus")
