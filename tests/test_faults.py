"""Deterministic failure-mode tests for the robustness layer.

Covers: fault-schedule determinism, retry-backoff escalation, quarantine
accounting, checkpoint/resume equivalence, and the enriched Cholesky
failure diagnostics.
"""

import numpy as np
import pytest

from repro.constraints import DistanceConstraint, PositionConstraint
from repro.constraints.batch import ConstraintBatch
from repro.core.hier_solver import HierarchicalSolver
from repro.core.state import StructureEstimate
from repro.core.update import UpdateOptions, apply_batch
from repro.errors import (
    BatchUpdateError,
    CheckpointError,
    NotPositiveDefiniteError,
    WorkerCrashError,
)
from repro.faults import (
    CheckpointManager,
    FaultConfig,
    FaultInjector,
    current_injector,
    fault_injection,
)
from repro.linalg.cholesky import cholesky_factor


def indefinite_estimate(bad=-1e-4):
    """A 1-atom estimate whose covariance has one negative eigenvalue."""
    cov = np.diag([1.0, 1.0, 1.0])
    cov[0, 0] = bad
    return StructureEstimate(np.zeros(3), cov)


class TestFaultConfig:
    def test_parse_spec(self):
        cfg = FaultConfig.parse("crash=0.05,nan=0.02,seed=7,mode=kill")
        assert cfg.crash_p == 0.05
        assert cfg.nan_p == 0.02
        assert cfg.seed == 7
        assert cfg.crash_mode == "kill"

    def test_parse_rejects_unknown_key(self):
        with pytest.raises(ValueError, match="unknown fault spec key"):
            FaultConfig.parse("explode=1.0")

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError, match="nan_p"):
            FaultConfig(nan_p=1.5)

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError, match="crash_mode"):
            FaultConfig(crash_mode="segfault")

    def test_no_injector_active_by_default(self):
        assert current_injector() is None


class TestDeterminism:
    def test_same_seed_same_crash_schedule(self):
        a = FaultInjector(FaultConfig(crash_p=0.3, seed=42))
        b = FaultInjector(FaultConfig(crash_p=0.3, seed=42))
        assert a.crash_schedule(200) == b.crash_schedule(200)

    def test_different_seed_different_schedule(self):
        a = FaultInjector(FaultConfig(crash_p=0.3, seed=1))
        b = FaultInjector(FaultConfig(crash_p=0.3, seed=2))
        assert a.crash_schedule(200) != b.crash_schedule(200)

    def test_channels_draw_independently(self):
        """Drawing on one channel must not perturb another's stream."""
        a = FaultInjector(FaultConfig(nan_p=0.5, crash_p=0.5, seed=9))
        b = FaultInjector(FaultConfig(nan_p=0.5, crash_p=0.5, seed=9))
        a.crash_schedule(50)  # extra draws on the crash channel only
        xa = a.maybe_poison(np.zeros((4, 4)), "gemm")
        xb = b.maybe_poison(np.zeros((4, 4)), "gemm")
        assert np.array_equal(np.isnan(xa), np.isnan(xb))

    def test_faulted_solve_reproducible(self, helix2_problem):
        est = helix2_problem.initial_estimate(0)
        outs = []
        for _ in range(2):
            inj = FaultInjector(FaultConfig(nan_p=0.02, crash_p=0.05, seed=7))
            with fault_injection(inj):
                res = HierarchicalSolver(helix2_problem.hierarchy, 16).run_cycle(est)
            outs.append((res, inj.summary()))
        (r1, s1), (r2, s2) = outs
        assert s1 == s2
        assert np.array_equal(r1.estimate.mean, r2.estimate.mean)
        assert np.array_equal(r1.estimate.covariance, r2.estimate.covariance)

    def test_disabled_injection_bitwise_identical(self, helix2_problem):
        """An all-zero-probability injector must not change a single bit."""
        est = helix2_problem.initial_estimate(0)
        clean = HierarchicalSolver(helix2_problem.hierarchy, 16).run_cycle(est)
        with fault_injection(FaultInjector(FaultConfig(seed=3))):
            idle = HierarchicalSolver(helix2_problem.hierarchy, 16).run_cycle(est)
        assert np.array_equal(clean.estimate.mean, idle.estimate.mean)
        assert np.array_equal(clean.estimate.covariance, idle.estimate.covariance)


class TestRetryBackoff:
    def test_escalation_sequence_is_geometric(self):
        est = indefinite_estimate()
        c = PositionConstraint(0, np.zeros(3), 1e-9)
        log = []
        opts = UpdateOptions(jitter=1e-9, jitter_growth=10.0, max_retries=8)
        post = apply_batch(est, ConstraintBatch((c,)), options=opts, retry_log=log)
        assert len(log) == 1 and log[0].succeeded
        regs = log[0].regularizations()
        assert regs[0] == 0.0  # first attempt is unregularized
        # every subsequent failed attempt escalated by exactly ×10
        for prev, nxt in zip(regs[1:], regs[2:]):
            assert nxt == pytest.approx(prev * 10.0)
        assert log[0].final_regularization > regs[-1]
        assert np.all(np.isfinite(post.mean))

    def test_terminal_failure_raises_batch_update_error(self):
        est = indefinite_estimate(bad=-10.0)  # far beyond the jitter range
        c = PositionConstraint(0, np.zeros(3), 1e-9)
        opts = UpdateOptions(jitter=1e-9, max_retries=3)
        with pytest.raises(BatchUpdateError) as excinfo:
            apply_batch(est, ConstraintBatch((c,)), options=opts)
        report = excinfo.value.report
        assert not report.succeeded
        assert report.n_failures == 4  # initial attempt + 3 retries
        assert report.regularizations() == pytest.approx((0.0, 1e-9, 1e-8, 1e-7))

    def test_jitter_zero_preserves_original_error(self):
        est = indefinite_estimate()
        c = PositionConstraint(0, np.zeros(3), 1e-9)
        with pytest.raises(NotPositiveDefiniteError):
            apply_batch(est, ConstraintBatch((c,)), options=UpdateOptions(jitter=0.0))

    def test_retry_log_empty_for_clean_update(self, rng):
        est = StructureEstimate.from_coords(rng.normal(0, 1, (2, 3)), sigma=1.0)
        log = []
        apply_batch(est, ConstraintBatch((DistanceConstraint(0, 1, 2.0, 0.1),)), retry_log=log)
        assert log == []


class TestQuarantine:
    def test_all_batches_quarantined_under_total_corruption(self, helix2_problem):
        est = helix2_problem.initial_estimate(0)
        solver = HierarchicalSolver(
            helix2_problem.hierarchy, 16, options=UpdateOptions(max_retries=2)
        )
        inj = FaultInjector(FaultConfig(corrupt_p=1.0, seed=0))
        with fault_injection(inj):
            res = solver.run_cycle(est)
        # Every constraint row passes through exactly one batch; with total
        # corruption every batch fails terminally and is quarantined.
        assert sum(q.n_rows for q in res.quarantined) == solver.n_constraint_rows
        assert sum(q.n_constraints for q in res.quarantined) == len(
            helix2_problem.constraints
        )
        # The estimate survives (prior carried through), uncontaminated.
        assert np.all(np.isfinite(res.estimate.mean))
        assert np.all(np.isfinite(res.estimate.covariance))

    def test_solve_reports_quarantine_totals(self, helix2_problem):
        est = helix2_problem.initial_estimate(0)
        solver = HierarchicalSolver(
            helix2_problem.hierarchy, 16, options=UpdateOptions(max_retries=1)
        )
        with fault_injection(FaultInjector(FaultConfig(corrupt_p=1.0, seed=0))):
            report = solver.solve(est, max_cycles=2, tol=0.0)
        # Every batch quarantined → the mean never moves → the solve
        # "converges" (delta exactly 0) after one cycle of pure quarantine.
        assert report.cycles == 1
        assert report.quarantined_constraints == len(helix2_problem.constraints)
        assert report.quarantined_rows == solver.n_constraint_rows
        assert len(report.quarantine) > 0

    def test_clean_solve_reports_no_quarantine(self, helix2_problem):
        est = helix2_problem.initial_estimate(0)
        report = HierarchicalSolver(helix2_problem.hierarchy, 16).solve(
            est, max_cycles=2, tol=0.0
        )
        assert report.quarantine == []
        assert report.quarantined_constraints == 0


class TestFaultedSolveCompletes:
    def test_helix_solve_within_2x_rmsd_of_clean(self, helix2_problem):
        """The ISSUE acceptance scenario: crash p=0.05, NaN p=0.02, fixed seed."""
        est = helix2_problem.initial_estimate(0)
        clean = HierarchicalSolver(helix2_problem.hierarchy, 16).solve(
            est, max_cycles=3, tol=0.0
        )
        inj = FaultInjector(FaultConfig(crash_p=0.05, nan_p=0.02, seed=7))
        with fault_injection(inj):
            faulted = HierarchicalSolver(helix2_problem.hierarchy, 16).solve(
                est, max_cycles=3, tol=0.0
            )
        assert faulted.quarantined_constraints >= 0  # reported, not crashed
        rmsd_clean = clean.estimate.rmsd(helix2_problem.true_coords)
        rmsd_faulted = faulted.estimate.rmsd(helix2_problem.true_coords)
        assert rmsd_faulted <= 2.0 * rmsd_clean


class TestCheckpointResume:
    @staticmethod
    def _kill_after(solver, n_nodes):
        """Make the solver die when it reaches its ``n_nodes``-th node."""
        original = solver._compute_node
        seen = {"n": 0}

        def bombed(node, prior, opts, quarantined, retries):
            if seen["n"] == n_nodes:
                raise WorkerCrashError("simulated kill")
            seen["n"] += 1
            return original(node, prior, opts, quarantined, retries)

        solver._compute_node = bombed

    def test_resumed_cycle_bitwise_matches_uninterrupted(self, helix2_problem, tmp_path):
        est = helix2_problem.initial_estimate(0)
        baseline = HierarchicalSolver(helix2_problem.hierarchy, 16).run_cycle(est)

        killed = HierarchicalSolver(
            helix2_problem.hierarchy, 16, checkpoint=CheckpointManager(tmp_path)
        )
        self._kill_after(killed, 5)
        with pytest.raises(WorkerCrashError):
            killed.run_cycle(est)

        resumed = HierarchicalSolver(
            helix2_problem.hierarchy, 16, checkpoint=CheckpointManager(tmp_path)
        )
        res = resumed.run_cycle(est)
        assert res.nodes_resumed == 5
        assert np.array_equal(res.estimate.mean, baseline.estimate.mean)
        assert np.array_equal(res.estimate.covariance, baseline.estimate.covariance)

    def test_resumed_multicycle_solve_matches_uninterrupted(
        self, helix2_problem, tmp_path
    ):
        est = helix2_problem.initial_estimate(0)
        baseline = HierarchicalSolver(helix2_problem.hierarchy, 16).solve(
            est, max_cycles=3, tol=0.0
        )

        killed = HierarchicalSolver(
            helix2_problem.hierarchy, 16, checkpoint=CheckpointManager(tmp_path)
        )
        n_nodes = len(helix2_problem.hierarchy)
        self._kill_after(killed, n_nodes + 4)  # dies inside cycle 2
        with pytest.raises(WorkerCrashError):
            killed.solve(est, max_cycles=3, tol=0.0)

        resumed = HierarchicalSolver(
            helix2_problem.hierarchy, 16, checkpoint=CheckpointManager(tmp_path)
        )
        report = resumed.solve(est, max_cycles=3, tol=0.0)
        assert np.array_equal(report.estimate.mean, baseline.estimate.mean)
        assert np.array_equal(report.estimate.covariance, baseline.estimate.covariance)
        assert report.deltas == pytest.approx(baseline.deltas)

    def test_checkpoint_directory_guards_problem_identity(self, helix2_problem, tmp_path):
        ck = CheckpointManager(tmp_path)
        ck.bind(helix2_problem.n_atoms)
        with pytest.raises(CheckpointError, match="belongs to"):
            CheckpointManager(tmp_path).bind(helix2_problem.n_atoms + 1)

    def test_clear_resets_directory(self, helix2_problem, tmp_path):
        est = helix2_problem.initial_estimate(0)
        solver = HierarchicalSolver(
            helix2_problem.hierarchy, 16, checkpoint=CheckpointManager(tmp_path)
        )
        solver.run_cycle(est)
        ck = CheckpointManager(tmp_path)
        assert ck.completed_cycle_estimate(0) is not None
        ck.clear()
        assert CheckpointManager(tmp_path).completed_cycle_estimate(0) is None


class TestCrashAbsorption:
    def test_injected_node_crashes_are_restarted(self, helix2_problem):
        est = helix2_problem.initial_estimate(0)
        clean = HierarchicalSolver(helix2_problem.hierarchy, 16).run_cycle(est)
        inj = FaultInjector(FaultConfig(crash_p=0.3, seed=11))
        with fault_injection(inj):
            res = HierarchicalSolver(
                helix2_problem.hierarchy, 16, node_crash_attempts=10
            ).run_cycle(est)
        assert inj.injected["crash"] > 0  # faults actually fired...
        # ...and node restarts erased them: results identical to clean.
        assert np.array_equal(res.estimate.mean, clean.estimate.mean)


class TestCholeskyDiagnostics:
    def test_lapack_failure_reports_condition_and_regularization(self):
        s = np.array([[1.0, 2.0], [2.0, 1.0]])  # indefinite
        with pytest.raises(NotPositiveDefiniteError) as excinfo:
            cholesky_factor(s)
        message = str(excinfo.value)
        assert "condition estimate" in message
        assert "attempted regularization 0.000e+00" in message
        assert excinfo.value.condition_estimate == pytest.approx(3.0)
        assert excinfo.value.regularization == 0.0

    def test_blocked_failure_keeps_panel_index_and_adds_diagnostics(self):
        s = np.diag([1.0, 1.0, -1.0, 1.0])
        with pytest.raises(NotPositiveDefiniteError) as excinfo:
            cholesky_factor(s, block=1)
        message = str(excinfo.value)
        assert "panel at 2" in message
        assert "condition estimate" in message
        assert "attempted regularization" in message

    def test_regularization_level_threaded_through(self):
        s = np.array([[1.0, 2.0], [2.0, 1.0]])
        with pytest.raises(NotPositiveDefiniteError) as excinfo:
            cholesky_factor(s, regularization=1e-6)
        assert excinfo.value.regularization == 1e-6
        assert "1.000e-06" in str(excinfo.value)

    def test_singular_matrix_reports_infinite_condition(self):
        s = np.zeros((2, 2))
        with pytest.raises(NotPositiveDefiniteError) as excinfo:
            cholesky_factor(s)
        assert excinfo.value.condition_estimate == float("inf")
