"""Tests for repro.util.validation."""

import numpy as np
import pytest

from repro.errors import DimensionError
from repro.util.validation import (
    as_matrix,
    as_vector,
    check_square,
    check_symmetric,
    require,
    symmetrize,
)


class TestRequire:
    def test_passes_silently(self):
        require(True, "never raised")

    def test_raises_default(self):
        with pytest.raises(DimensionError, match="boom"):
            require(False, "boom")

    def test_raises_custom_exception(self):
        with pytest.raises(ValueError, match="custom"):
            require(False, "custom", ValueError)


class TestAsVector:
    def test_coerces_list(self):
        v = as_vector([1, 2, 3])
        assert v.dtype == np.float64
        assert v.shape == (3,)

    def test_rejects_matrix(self):
        with pytest.raises(DimensionError, match="1-D"):
            as_vector(np.zeros((2, 2)))

    def test_size_check(self):
        with pytest.raises(DimensionError, match="length 4"):
            as_vector([1.0, 2.0], size=4)

    def test_size_ok(self):
        assert as_vector([1.0, 2.0], size=2).shape == (2,)

    def test_contiguous(self):
        v = as_vector(np.arange(10.0)[::2])
        assert v.flags["C_CONTIGUOUS"]


class TestAsMatrix:
    def test_coerces_nested_list(self):
        m = as_matrix([[1, 2], [3, 4]])
        assert m.shape == (2, 2)

    def test_rejects_vector(self):
        with pytest.raises(DimensionError, match="2-D"):
            as_matrix(np.zeros(3))

    def test_row_check(self):
        with pytest.raises(DimensionError, match="rows"):
            as_matrix(np.zeros((2, 3)), shape=(3, None))

    def test_col_check(self):
        with pytest.raises(DimensionError, match="columns"):
            as_matrix(np.zeros((2, 3)), shape=(None, 2))

    def test_partial_shape_ok(self):
        assert as_matrix(np.zeros((2, 3)), shape=(2, None)).shape == (2, 3)


class TestCheckSquare:
    def test_accepts_square(self):
        assert check_square(np.eye(3)).shape == (3, 3)

    def test_rejects_rectangular(self):
        with pytest.raises(DimensionError, match="square"):
            check_square(np.zeros((2, 3)))


class TestCheckSymmetric:
    def test_accepts_symmetric(self):
        a = np.array([[2.0, 1.0], [1.0, 3.0]])
        check_symmetric(a)

    def test_rejects_asymmetric(self):
        a = np.array([[0.0, 1.0], [0.0, 0.0]])
        with pytest.raises(DimensionError, match="symmetric"):
            check_symmetric(a)

    def test_tolerance_is_relative(self):
        a = np.array([[1e12, 1.0], [0.0, 1e12]])
        check_symmetric(a, tol=1e-8)  # 1.0 asymmetry is tiny next to 1e12

    def test_empty_matrix(self):
        check_symmetric(np.zeros((0, 0)))


class TestSymmetrize:
    def test_result_is_symmetric(self):
        a = np.random.default_rng(0).normal(size=(5, 5))
        s = symmetrize(a)
        assert np.allclose(s, s.T)

    def test_preserves_symmetric_input(self):
        a = np.array([[2.0, 1.0], [1.0, 3.0]])
        assert np.allclose(symmetrize(a), a)

    def test_average_of_transposes(self):
        a = np.array([[0.0, 2.0], [0.0, 0.0]])
        assert np.allclose(symmetrize(a), [[0.0, 1.0], [1.0, 0.0]])
