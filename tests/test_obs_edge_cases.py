"""Edge cases for the obs analytics and regression-gate loaders.

Degenerate traces the fuzzer can produce — zero-constraint solves,
single-cycle convergence, warm re-solves whose dirty frontier is empty —
must flow through ``doctor_report``/``solve_passes`` without crashing,
and the regress loaders must fail loudly (typed errors, not stack
corruption) on malformed benchmark reports.
"""

import json
from dataclasses import replace

import pytest

from repro import obs
from repro.core.session import SolveSession
from repro.errors import TraceAnalysisError
from repro.obs import analysis
from repro.obs.regress import (
    check_metric,
    hotpath_metric,
    incremental_entry,
    median_mad,
    run_regress,
)
from repro.scenarios import build_scenario, spec_from_seed


def _scenario():
    return build_scenario(replace(spec_from_seed(0), faults=None))


def _traced_session(constraints, max_cycles=1, resolve_empty=False):
    scenario = _scenario()
    tracer = obs.Tracer()
    session = SolveSession(
        scenario.fresh_hierarchy(),
        constraints,
        batch_size=4,
        options=scenario.options,
    )
    try:
        with obs.tracing(tracer):
            session.solve(
                scenario.initial_estimate(), max_cycles=max_cycles, tol=1e9
            )
            if resolve_empty:
                result = session.resolve(scope="dirty")
                assert result.n_dirty == 0
    finally:
        session.close()
    return tracer


class TestDoctorDegenerateTraces:
    def test_zero_constraint_solve_trace(self):
        tracer = _traced_session([])
        report = obs.doctor_report(tracer)
        assert report["passes"]

    def test_single_cycle_convergence_trace(self):
        scenario = _scenario()
        tracer = _traced_session(scenario.problem.constraints, max_cycles=1)
        report = obs.doctor_report(tracer)
        assert len(report["passes"]) == 1

    def test_empty_dirty_frontier_resolve_trace(self):
        """A no-op warm resolve records a cycle with no recomputed nodes;
        the pass extractor must drop it instead of dividing by zero."""
        scenario = _scenario()
        tracer = _traced_session(
            scenario.problem.constraints, resolve_empty=True
        )
        report = obs.doctor_report(tracer)
        assert report["passes"]
        passes = analysis.solve_passes(tracer)
        assert all(p.nodes for p in passes)

    def test_empty_trace_raises_typed_error(self):
        with pytest.raises(TraceAnalysisError, match="no 'cycle' spans"):
            analysis.solve_passes(obs.Tracer())
        with pytest.raises(TraceAnalysisError):
            obs.doctor_report(obs.Tracer())


class TestRegressLoaders:
    def test_median_mad_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one sample"):
            median_mad([])

    def test_check_metric_rejects_unknown_direction(self):
        with pytest.raises(ValueError, match="direction"):
            check_metric("m", [1.0], limit=1.0, direction="sideways")

    def test_hotpath_metric_missing_entry(self):
        with pytest.raises(KeyError):
            hotpath_metric({"results": {"helix": []}})

    def test_incremental_entry_missing_entry(self):
        with pytest.raises(KeyError):
            incremental_entry({"results": {"helix": []}})

    def test_run_regress_from_fresh_report_files(self, tmp_path):
        """The file-loader path: no in-process measurement, verdict only
        from report JSONs (what CI's artifact diffing uses).  The base
        deliberately keeps the legacy seconds_per_constraint key — the
        committed baseline predates the seconds_per_row rename."""
        hot = {
            "results": {
                "helix": [
                    {
                        "backend": "serial",
                        "kernel_impl": "fast",
                        "seconds_per_constraint": 1e-4,
                    }
                ]
            }
        }
        base = tmp_path / "base.json"
        fresh = tmp_path / "fresh.json"
        base.write_text(json.dumps(hot))
        del hot["results"]["helix"][0]["seconds_per_constraint"]
        hot["results"]["helix"][0]["seconds_per_row"] = 1.2e-4
        fresh.write_text(json.dumps(hot))
        report = run_regress(
            hotpath_baseline=base,
            incremental_baseline=None,
            fresh_hotpath=[fresh],
        )
        assert report["ok"]
        assert report["checks"][0]["samples"] == [1.2e-4]

    def test_run_regress_flags_real_regression(self, tmp_path):
        hot = {
            "results": {
                "helix": [
                    {
                        "backend": "serial",
                        "kernel_impl": "fast",
                        "seconds_per_row": 1e-4,
                    }
                ]
            }
        }
        base = tmp_path / "base.json"
        fresh = tmp_path / "fresh.json"
        base.write_text(json.dumps(hot))
        hot["results"]["helix"][0]["seconds_per_row"] = 5e-4  # 5x
        fresh.write_text(json.dumps(hot))
        report = run_regress(
            hotpath_baseline=base,
            incremental_baseline=None,
            fresh_hotpath=[fresh],
        )
        assert not report["ok"]
        assert report["failures"]

    def test_malformed_report_raises_cleanly(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"results": {}}))
        with pytest.raises(KeyError):
            run_regress(hotpath_baseline=bad, incremental_baseline=None,
                        fresh_hotpath=[bad])
