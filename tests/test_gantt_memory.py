"""Tests for the Gantt renderer and the memory accounting."""

import numpy as np
import pytest

from repro.core.hier_solver import HierarchicalSolver
from repro.core.memory import (
    batch_temporaries_bytes,
    estimate_bytes,
    flat_peak_bytes,
    hierarchical_peak_bytes,
)
from repro.errors import SimulationError
from repro.machine import DASH, simulate_solve
from repro.machine.gantt import gantt_chart
from repro.machine.trace import SimulationResult, CategoryBreakdown
from repro.molecules.rna import build_helix


@pytest.fixture(scope="module")
def helix4_sim():
    problem = build_helix(4)
    problem.assign()
    cycle = HierarchicalSolver(problem.hierarchy, batch_size=16).run_cycle(
        problem.initial_estimate(0)
    )
    return problem, simulate_solve(cycle, problem.hierarchy, DASH(), 4)


class TestGantt:
    def test_renders_all_processors(self, helix4_sim):
        _, result = helix4_sim
        text = gantt_chart(result)
        assert text.count("\np") == 4  # p0..p3 rows
        assert "work time" in text
        assert "largest tasks" in text

    def test_root_spans_all_processors(self, helix4_sim):
        problem, result = helix4_sim
        text = gantt_chart(result, width=40)
        rows = [l for l in text.splitlines() if l.startswith("p")]
        # the last column of every processor row is the root's glyph
        last_chars = {row.split("|")[1][-1] for row in rows}
        assert len(last_chars) == 1
        assert last_chars != {"."}

    def test_idle_visible(self, helix4_sim):
        _, result = helix4_sim
        if result.utilization < 0.999:
            assert "." in gantt_chart(result)

    def test_too_narrow_rejected(self, helix4_sim):
        _, result = helix4_sim
        with pytest.raises(SimulationError):
            gantt_chart(result, width=10)

    def test_empty_timeline(self):
        empty = SimulationResult(
            machine="m",
            n_processors=1,
            work_time=0.0,
            breakdown=CategoryBreakdown({}),
            timeline=[],
            busy_per_processor=[0.0],
        )
        assert "empty" in gantt_chart(empty)


class TestMemoryAccounting:
    def test_estimate_bytes(self):
        # 2 atoms -> n=6 -> 8*(6+36)
        assert estimate_bytes(2) == 8 * 42

    def test_flat_peak_dominated_by_covariance(self):
        n_atoms = 100
        assert flat_peak_bytes(n_atoms) > 8 * (300 * 300)

    def test_hier_peak_at_least_flat(self):
        """The paper's §4.4 observation: the hierarchy does not reduce
        peak memory — the root still holds the full covariance while
        late-arriving subtree results are queued."""
        for length in (2, 4, 8):
            problem = build_helix(length)
            profile = hierarchical_peak_bytes(problem.hierarchy)
            assert profile.overhead_ratio >= 1.0

    def test_overhead_modest(self):
        problem = build_helix(8)
        profile = hierarchical_peak_bytes(problem.hierarchy)
        assert profile.overhead_ratio < 2.0  # inherent overhead is bounded

    def test_peak_at_or_near_root(self):
        problem = build_helix(4)
        profile = hierarchical_peak_bytes(problem.hierarchy)
        assert profile.peak_node.startswith("helix")

    def test_deeper_tree_lower_intermediate_live_set(self):
        """Peak is root-dominated, so deeper decompositions cost little
        extra despite many more nodes."""
        shallow = hierarchical_peak_bytes(build_helix(2).hierarchy)
        deep = hierarchical_peak_bytes(build_helix(8).hierarchy)
        # Ratios stay in the same modest band regardless of depth.
        assert abs(shallow.overhead_ratio - deep.overhead_ratio) < 0.5

    def test_temporaries_scale_with_batch(self):
        assert batch_temporaries_bytes(50, 64) > batch_temporaries_bytes(50, 8)
