"""Live telemetry plane: flight recorder, rolling histograms, heartbeats.

Pins the while-it-runs observability contracts of :mod:`repro.obs.live`
and the streaming internals of :mod:`repro.obs.metrics`:

* the flight recorder's bounded ring, forensic triggers, dump format and
  worker payload/absorb transport;
* log-bucket histograms (O(1) memory, quantiles within bucket
  resolution, merge, and the legacy ``values``-list snapshot alias);
* labeled metric keys surviving snapshot/merge round trips;
* the heartbeat exporter + ``repro obs top`` rendering, and the SLO
  burn-rate verdict.
"""

import json

import numpy as np
import pytest

from repro import obs
from repro.core.hierarchy import assign_constraints
from repro.core.hier_solver import HierarchicalSolver
from repro.faults import FaultConfig, FaultInjector, fault_injection
from repro.obs.live import DEFAULT_TRIGGERS
from repro.obs.metrics import (
    Histogram,
    bucket_index,
    bucket_value,
    labeled_name,
    parse_metric_key,
    quantile_from_snapshot,
)
from repro.obs.validate import (
    flight_jsonl_stats,
    heartbeat_jsonl_stats,
    validate_flight_jsonl,
    validate_heartbeat_jsonl,
)


def _read_rows(path):
    with open(path) as fh:
        return [json.loads(line) for line in fh if line.strip()]


# --------------------------------------------------------------- histograms
class TestStreamingHistogram:
    def test_constant_memory(self):
        """The histogram must not retain observations — only bucket counts."""
        h = Histogram()
        rng = np.random.default_rng(0)
        for v in rng.lognormal(size=10_000):
            h.observe(float(v))
        assert not hasattr(h, "values")
        assert h.count == 10_000
        # bucket count is bounded by the clamped index range, not by n
        assert len(h.buckets) < 600

    def test_quantiles_within_bucket_resolution(self):
        rng = np.random.default_rng(7)
        xs = rng.lognormal(mean=-1.0, sigma=1.0, size=20_000)
        h = Histogram()
        for v in xs:
            h.observe(float(v))
        # log-bucket geometry: 4 buckets per power of two => ~9% ceiling
        for q in (0.5, 0.9, 0.99):
            exact = float(np.quantile(xs, q))
            assert h.quantile(q) == pytest.approx(exact, rel=0.12)
        # extremes pin to the exact observed range within one bucket
        assert h.quantile(0.0) == pytest.approx(h.vmin, rel=0.2)
        assert h.quantile(1.0) == pytest.approx(h.vmax, rel=0.2)
        assert h.vmin <= h.quantile(0.0) <= h.quantile(1.0) <= h.vmax

    def test_merge_matches_union(self):
        a, b = Histogram(), Histogram()
        xs = [0.001, 0.01, 0.5, 2.0, 40.0]
        ys = [0.25, 0.3, 8.0]
        for v in xs:
            a.observe(v)
        for v in ys:
            b.observe(v)
        a.merge(b)
        assert a.count == len(xs) + len(ys)
        assert a.vmin == min(xs + ys)
        assert a.vmax == max(xs + ys)
        assert a.mean == pytest.approx(float(np.mean(xs + ys)))

    def test_bucket_geometry_round_trips(self):
        for v in (1e-4, 0.02, 1.0, 3.7, 1e5):
            idx = bucket_index(v)
            # the representative value lands back in the same bucket
            assert bucket_index(bucket_value(idx)) == idx

    def test_merge_snapshot_reads_legacy_values_lists(self):
        """Old worker snapshots carried raw ``values`` lists; merging one
        must still work (observations re-bucketed on ingest)."""
        registry = obs.MetricsRegistry()
        registry.merge_snapshot(
            {
                "counters": {},
                "gauges": {},
                "histograms": {
                    "node.seconds": {
                        "count": 3,
                        "values": [1.0, 2.0, 3.0],
                    }
                },
            }
        )
        h = registry.histogram("node.seconds")
        assert h.count == 3
        assert h.mean == pytest.approx(2.0)
        assert h.vmax == 3.0

    def test_snapshot_merge_round_trip(self):
        src = obs.MetricsRegistry()
        for v in (0.1, 0.2, 0.4, 0.8):
            src.histogram("cycle.seconds").observe(v)
        dst = obs.MetricsRegistry()
        dst.merge_snapshot(src.snapshot())
        dst.merge_snapshot(src.snapshot())
        h = dst.histogram("cycle.seconds")
        assert h.count == 8
        snap = dst.snapshot()["histograms"]["cycle.seconds"]
        assert sum(snap["buckets"].values()) == 8
        assert quantile_from_snapshot(snap, 0.5) == pytest.approx(
            h.quantile(0.5)
        )


# ----------------------------------------------------------- labeled metrics
class TestLabeledMetrics:
    def test_key_encoding_round_trip(self):
        key = labeled_name("session.solves", {"session": "s1", "backend": "thread"})
        assert key == "session.solves{backend=thread,session=s1}"
        name, labels = parse_metric_key(key)
        assert name == "session.solves"
        assert labels == {"backend": "thread", "session": "s1"}
        assert parse_metric_key("plain.counter") == ("plain.counter", {})

    def test_labeled_series_survive_snapshot_merge(self):
        src = obs.MetricsRegistry()
        src.counter("session.solves", labels={"session": "a"}).inc()
        src.counter("session.solves", labels={"session": "b"}).inc(2)
        src.histogram("node.seconds", labels={"session": "a"}).observe(0.5)
        dst = obs.MetricsRegistry()
        dst.merge_snapshot(src.snapshot())
        assert dst.counter("session.solves", labels={"session": "a"}).value == 1
        assert dst.counter("session.solves", labels={"session": "b"}).value == 2
        assert dst.histogram("node.seconds", labels={"session": "a"}).count == 1

    def test_observe_latency_publishes_quantile_gauges(self):
        registry = obs.MetricsRegistry()
        with obs.metrics_scope(registry):
            for v in (0.1, 0.2, 0.3):
                obs.observe_latency("cycle.seconds", v)
        snap = registry.snapshot()
        assert snap["histograms"]["cycle.seconds"]["count"] == 3
        assert snap["gauges"]["cycle.seconds.p50"] == pytest.approx(0.2, rel=0.1)
        assert snap["gauges"]["cycle.seconds.p99"] == pytest.approx(0.3, rel=0.1)


# ------------------------------------------------------------ flight recorder
class TestFlightRecorder:
    def test_ring_is_bounded_and_counts_drops(self):
        rec = obs.FlightRecorder(capacity=8)
        for i in range(20):
            rec.record("span", f"node[{i}]", "solve", {"nid": i}, duration=0.01)
        assert rec.recorded == 20
        assert rec.dropped == 12
        payload = rec.payload()
        assert len(payload["events"]) == 8
        assert payload["events"][-1]["name"] == "node[19]"

    def test_idle_without_active_recorder_records_nothing(self):
        rec = obs.FlightRecorder()
        assert obs.current_flight_recorder() is None
        obs.instant("update.batch_failed", cat="fault")  # no-op: not active
        assert rec.recorded == 0

    def test_span_and_instant_hooks_feed_active_recorder(self):
        with obs.flight_recording(capacity=16) as rec:
            with obs.span("node[3]", cat="solve", nid=3):
                pass
            obs.instant("fault.injected", cat="fault", channel="chol")
        kinds = [(e["kind"], e["name"]) for e in rec.payload()["events"]]
        assert ("instant", "fault.injected") in kinds
        assert ("span", "node[3]") in kinds
        span = next(e for e in rec.payload()["events"] if e["kind"] == "span")
        assert span["dur"] >= 0.0
        assert rec.overhead_seconds > 0.0

    def test_trigger_dumps_validated_artifact(self, tmp_path):
        with obs.flight_recording(dump_dir=tmp_path, capacity=32) as rec:
            with obs.span("node[1]", cat="solve", nid=1):
                pass
            obs.instant(
                "update.batch_failed",
                cat="fault",
                attempts=3,
                error="NotPositiveDefiniteError",
            )
        assert len(rec.dumps) == 1
        rows = _read_rows(rec.dumps[0])
        assert validate_flight_jsonl(rows) == []
        meta = rows[0]
        assert meta["reason"] == "update.batch_failed"
        assert meta["trigger"]["error"] == "NotPositiveDefiniteError"
        stats = flight_jsonl_stats(rows)
        assert stats["events"] == 2

    def test_npd_error_attr_triggers_regardless_of_name(self, tmp_path):
        rec = obs.FlightRecorder(dump_dir=tmp_path)
        rec.record("instant", "some.other.instant", "x", {"error": "ValueError"})
        assert rec.dumps == []
        rec.record(
            "instant", "some.other.instant", "x",
            {"error": "NotPositiveDefiniteError"},
        )
        assert len(rec.dumps) == 1

    def test_dump_rate_limit(self, tmp_path):
        rec = obs.FlightRecorder(dump_dir=tmp_path, max_dumps=2)
        for _ in range(5):
            rec.record("instant", "executor.pool_rebuild", "executor", {})
        assert len(rec.dumps) == 2

    def test_worker_payload_absorb_refires_triggers(self, tmp_path):
        worker = obs.FlightRecorder()  # no dump_dir: worker-side config
        worker.record("span", "node[9]", "solve", {"nid": 9}, duration=0.2)
        worker.record("instant", "batch.quarantined", "fault", {"nid": 9})
        assert worker.dumps == []  # cannot dump, only queue
        parent = obs.FlightRecorder(dump_dir=tmp_path)
        parent.absorb(worker.payload())
        # the worker's trigger fired in the parent, with the worker's attrs
        assert len(parent.dumps) == 1
        rows = _read_rows(parent.dumps[0])
        assert validate_flight_jsonl(rows) == []
        assert rows[0]["reason"] == "batch.quarantined"
        assert rows[0]["trigger"] == {"nid": 9}
        assert {r["name"] for r in rows[1:]} == {"node[9]", "batch.quarantined"}

    def test_manual_dump_explicit_path(self, tmp_path):
        rec = obs.FlightRecorder()
        rec.record("span", "node[0]", "solve", {}, duration=0.1)
        path = rec.dump(tmp_path / "flight.jsonl")
        rows = _read_rows(path)
        assert validate_flight_jsonl(rows) == []
        assert rows[0]["reason"] == "manual"

    def test_default_triggers_cover_the_failure_surfaces(self):
        assert {
            "update.batch_failed",     # terminal batch failure / NPD path
            "batch.quarantined",       # quarantine
            "executor.resubmit",       # worker death (lost task)
            "executor.pool_rebuild",   # pool rebuild
        } <= DEFAULT_TRIGGERS


# ------------------------------------------------- solver-integrated forensics
class TestSolverForensics:
    def test_serial_chol_fault_storm_leaves_validated_dump(
        self, two_group_problem, tmp_path
    ):
        """Injected factorization failures that exhaust retries must dump
        the ring, naming the failing surface in the trigger."""
        coords, constraints, hierarchy, estimate = two_group_problem
        assign_constraints(hierarchy, constraints)
        inj = FaultInjector(FaultConfig(chol_p=1.0, seed=0))
        solver = HierarchicalSolver(hierarchy, batch_size=4)
        with obs.flight_recording(dump_dir=tmp_path) as rec, fault_injection(inj):
            solver.run_cycle(estimate)
        assert rec.dumps, "no forensic dump written"
        rows = _read_rows(rec.dumps[0])
        assert validate_flight_jsonl(rows) == []
        assert rows[0]["reason"] in DEFAULT_TRIGGERS
        names = {r["name"] for r in rows[1:]}
        assert "fault.injected" in names
        sites = {
            r["attrs"].get("site")
            for r in rows[1:]
            if r["name"] == "fault.injected"
        }
        assert "cholesky" in sites

    def test_recorder_does_not_change_results(self, two_group_problem):
        """Bit-identity: an active flight recorder must be observe-only."""
        coords, constraints, hierarchy, estimate = two_group_problem
        assign_constraints(hierarchy, constraints)
        plain = HierarchicalSolver(hierarchy, batch_size=4).run_cycle(estimate)
        with obs.flight_recording():
            recorded = HierarchicalSolver(hierarchy, batch_size=4).run_cycle(
                estimate
            )
        assert np.array_equal(plain.estimate.mean, recorded.estimate.mean)
        assert np.array_equal(
            plain.estimate.covariance, recorded.estimate.covariance
        )


# ------------------------------------------------------------- heartbeats
class TestTelemetrySnapshotter:
    def test_writes_meta_and_final_beat(self, tmp_path):
        registry = obs.MetricsRegistry()
        registry.counter("sched.busy_seconds").inc(1.5)
        path = tmp_path / "hb.jsonl"
        with obs.TelemetrySnapshotter(registry, path, period=60.0) as snap:
            registry.histogram("cycle.seconds").observe(0.25)
        # period far longer than the run: stop() still wrote one beat
        assert snap.beats >= 1
        rows = _read_rows(path)
        assert validate_heartbeat_jsonl(rows) == []
        meta, beats = rows[0], rows[1:]
        assert meta["type"] == "heartbeat_meta"
        assert meta["period_seconds"] == 60.0
        last = beats[-1]["metrics"]
        assert last["counters"]["sched.busy_seconds"] == 1.5
        assert last["histograms"]["cycle.seconds"]["count"] == 1
        # the snapshotter prices itself into every beat
        assert "obs.snapshotter_overhead_seconds" in last["gauges"]
        stats = heartbeat_jsonl_stats(rows)
        assert stats["beats"] == len(beats)

    def test_appends_across_runs_single_meta(self, tmp_path):
        registry = obs.MetricsRegistry()
        path = tmp_path / "hb.jsonl"
        for _ in range(2):
            with obs.TelemetrySnapshotter(registry, path, period=60.0):
                pass
        rows = _read_rows(path)
        assert sum(1 for r in rows if r["type"] == "heartbeat_meta") == 1

    def test_read_heartbeats(self, tmp_path):
        registry = obs.MetricsRegistry()
        path = tmp_path / "hb.jsonl"
        with obs.TelemetrySnapshotter(registry, path, period=60.0):
            pass
        meta, rows = obs.read_heartbeats(path)
        assert meta["version"] == 1
        assert rows and rows[0]["seq"] == 0

    def test_parse_heartbeat_spec(self):
        path, period = obs.parse_heartbeat_spec("hb.jsonl")
        assert str(path) == "hb.jsonl" and period == 1.0
        path, period = obs.parse_heartbeat_spec("out/hb.jsonl:0.25")
        assert str(path) == "out/hb.jsonl" and period == 0.25
        with pytest.raises(ValueError):
            obs.parse_heartbeat_spec("hb.jsonl:-1")


# ------------------------------------------------------------------- SLOs
class TestSLO:
    def test_spec_parse(self):
        spec = obs.SLOSpec.parse("cycle.seconds:2.0")
        assert spec == obs.SLOSpec("cycle.seconds", 2.0, 0.95)
        spec = obs.SLOSpec.parse("resolve.seconds:0.5:0.99")
        assert spec.objective == 0.99
        for bad in ("cycle.seconds", "m:0", "m:1:1.5", "m:1:0"):
            with pytest.raises(ValueError):
                obs.SLOSpec.parse(bad)

    def test_burn_rate_verdicts(self):
        spec = obs.SLOSpec("cycle.seconds", 1.0, objective=0.9)
        tracker = obs.SLOTracker(spec, window=10)
        assert tracker.verdict() == "no-data"
        tracker.update(good=99, bad=1)  # 1% bad vs 10% budget: burn 0.1
        assert tracker.verdict() == "ok"
        tracker.update(good=0, bad=15)  # now ~14% bad: burn ~1.4
        assert tracker.verdict() == "warn"
        tracker.update(good=0, bad=100)  # blows the budget
        assert tracker.verdict() == "breach"

    def test_good_bad_split_uses_bucket_representatives(self):
        from repro.obs.live import good_bad_from_buckets

        h = Histogram()
        for v in (0.1, 0.2, 5.0):
            h.observe(v)
        good, bad = good_bad_from_buckets(
            {str(i): n for i, n in h.buckets.items()}, target=1.0
        )
        assert (good, bad) == (2, 1)


# ------------------------------------------------------------------ obs top
def _beat(seq, ts, counters=None, gauges=None, histograms=None):
    return {
        "type": "heartbeat",
        "seq": seq,
        "ts": ts,
        "uptime_seconds": float(seq),
        "metrics": {
            "counters": counters or {},
            "gauges": gauges or {},
            "histograms": histograms or {},
        },
    }


class TestRenderTop:
    def test_renders_rates_levels_sessions_and_slo(self):
        h0 = {"count": 1, "buckets": {str(bucket_index(0.5)): 1}}
        h1 = {
            "count": 3,
            "buckets": {str(bucket_index(0.5)): 2, str(bucket_index(4.0)): 1},
        }
        rows = [
            _beat(
                0, 100.0,
                counters={"sched.busy_seconds": 0.0,
                          "sched.lane.0.busy_seconds": 0.0},
                histograms={"cycle.seconds": h0},
            ),
            _beat(
                1, 101.0,
                counters={
                    "sched.busy_seconds": 1.2,
                    "sched.lane.0.busy_seconds": 0.9,
                    "plan.cache_hits": 9.0,
                    "plan.cache_builds": 1.0,
                    "session.solves{backend=thread,session=s1}": 2.0,
                },
                gauges={"sched.workers": 2.0, "sched.inflight": 1.0,
                        "sched.queued": 3.0},
                histograms={"cycle.seconds": h1},
            ),
        ]
        meta = {"period_seconds": 1.0, "pid": 123}
        out = obs.render_top(
            meta, rows, slo=obs.SLOSpec("cycle.seconds", 2.0), window=5
        )
        assert "workers 2  inflight 1  queued 3  busy 60.0%" in out
        assert "lane0 90.0%" in out
        assert "plan-cache 90.0% hit" in out
        assert "cycle" in out and "p50" in out
        assert "SLO cycle.seconds <= 2s" in out
        assert "s1{backend=thread} solves=2" in out

    def test_empty_rows(self):
        assert obs.render_top({}, []) == "no heartbeats yet"

    def test_slo_breach_shows_in_view(self):
        bad_bucket = {str(bucket_index(10.0)): 5}
        rows = [
            _beat(0, 10.0, histograms={"cycle.seconds": {"count": 5, "buckets": bad_bucket}}),
        ]
        out = obs.render_top({}, rows, slo=obs.SLOSpec("cycle.seconds", 1.0))
        assert "breach" in out


# ---------------------------------------------------------------- CLI: top
class TestObsTopCLI:
    def test_once_renders_and_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        registry = obs.MetricsRegistry()
        registry.histogram("cycle.seconds").observe(0.2)
        path = tmp_path / "hb.jsonl"
        with obs.TelemetrySnapshotter(registry, path, period=60.0):
            pass
        rc = main(
            ["obs", "top", str(path), "--once", "--slo", "cycle.seconds:2.0"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "repro obs top" in out
        assert "SLO cycle.seconds" in out

    def test_once_without_beats_exits_one(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "hb.jsonl"
        path.write_text(
            json.dumps(
                {"type": "heartbeat_meta", "version": 1, "period_seconds": 1.0}
            )
            + "\n"
        )
        assert main(["obs", "top", str(path), "--once"]) == 1

    def test_once_missing_file_exits_one(self, tmp_path):
        from repro.cli import main

        assert main(["obs", "top", str(tmp_path / "none.jsonl"), "--once"]) == 1
