"""Tests for the real parallel runtime and the dynamic scheduling extension."""

import numpy as np
import pytest

from repro.core.hier_solver import HierarchicalSolver
from repro.errors import SimulationError
from repro.machine import DASH, simulate_solve, uniform_machine
from repro.parallel import (
    ParallelHierarchicalSolver,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
)
from repro.parallel.dynamic import _largest_remainder, dynamic_assignment_schedule


class TestExecutors:
    def test_serial_map(self):
        assert SerialExecutor().map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]

    def test_thread_map_order_preserved(self):
        with ThreadExecutor(4) as ex:
            assert ex.map(lambda x: x * x, list(range(20))) == [x * x for x in range(20)]

    def test_thread_invalid_workers(self):
        with pytest.raises(ValueError):
            ThreadExecutor(0)

    def test_process_invalid_workers(self):
        with pytest.raises(ValueError):
            ProcessExecutor(0)

    def test_context_manager_closes(self):
        ex = ThreadExecutor(2)
        with ex:
            pass
        # pool is shut down; further submissions fail
        with pytest.raises(RuntimeError):
            ex.map(lambda x: x, [1])


class TestParallelSolver:
    def test_wavefronts_partition_nodes(self, helix2_problem):
        solver = ParallelHierarchicalSolver(helix2_problem.hierarchy)
        fronts = solver.wavefronts()
        ids = [n.nid for front in fronts for n in front]
        assert sorted(ids) == [n.nid for n in helix2_problem.hierarchy.post_order()]
        assert all(n.is_leaf for n in fronts[0])
        assert fronts[-1] == [helix2_problem.hierarchy.root]

    def test_wavefront_independence(self, helix2_problem):
        """No node may appear in the same front as one of its ancestors."""
        solver = ParallelHierarchicalSolver(helix2_problem.hierarchy)
        for front in solver.wavefronts():
            ids = {n.nid for n in front}
            for node in front:
                p = node.parent
                while p is not None:
                    assert p.nid not in ids
                    p = p.parent

    def test_inline_matches_serial_solver(self, helix2_problem):
        est = helix2_problem.initial_estimate(0)
        serial = HierarchicalSolver(helix2_problem.hierarchy, batch_size=16).run_cycle(est)
        par = ParallelHierarchicalSolver(helix2_problem.hierarchy, batch_size=16).run_cycle(est)
        assert np.array_equal(serial.estimate.mean, par.estimate.mean)
        assert np.array_equal(serial.estimate.covariance, par.estimate.covariance)

    def test_threads_match_serial_solver(self, helix2_problem):
        est = helix2_problem.initial_estimate(0)
        serial = HierarchicalSolver(helix2_problem.hierarchy, batch_size=16).run_cycle(est)
        with ThreadExecutor(4) as ex:
            par = ParallelHierarchicalSolver(
                helix2_problem.hierarchy, batch_size=16, executor=ex
            ).run_cycle(est)
        assert np.array_equal(serial.estimate.mean, par.estimate.mean)

    def test_records_complete_and_tagged(self, helix2_problem):
        est = helix2_problem.initial_estimate(0)
        res = ParallelHierarchicalSolver(helix2_problem.hierarchy, batch_size=16).run_cycle(est)
        assert {r.nid for r in res.records} == {
            n.nid for n in helix2_problem.hierarchy.nodes
        }
        for r in res.records:
            assert all(e.tag == r.nid for e in r.events)

    def test_simulator_accepts_parallel_records(self, helix2_problem):
        est = helix2_problem.initial_estimate(0)
        cycle = ParallelHierarchicalSolver(helix2_problem.hierarchy, batch_size=16).run_cycle(est)
        res = simulate_solve(cycle, helix2_problem.hierarchy, DASH(), 4)
        assert res.work_time > 0


class TestDynamicSchedule:
    @pytest.fixture(scope="class")
    def helix4_records(self):
        from repro.molecules.rna import build_helix

        p = build_helix(4)
        p.assign()
        cycle = HierarchicalSolver(p.hierarchy, batch_size=16).run_cycle(
            p.initial_estimate(0)
        )
        return p, cycle

    def test_single_processor_matches_static_total(self, helix4_records):
        p, cycle = helix4_records
        cfg = uniform_machine(1, flops=1e9)
        dyn = dynamic_assignment_schedule(p.hierarchy, cycle.record_by_nid(), cfg, 1, 0.0)
        stat = simulate_solve(cycle, p.hierarchy, cfg, 1)
        assert dyn.work_time == pytest.approx(stat.work_time, rel=1e-9)

    def test_never_much_worse_than_static(self, helix4_records):
        p, cycle = helix4_records
        recs = cycle.record_by_nid()
        for n in (2, 3, 5, 6, 7):
            dyn = dynamic_assignment_schedule(p.hierarchy, recs, DASH(), n, 0.0)
            stat = simulate_solve(cycle, p.hierarchy, DASH(), n)
            assert dyn.work_time <= stat.work_time * 1.25

    def test_helps_at_non_power_of_two(self, helix4_records):
        p, cycle = helix4_records
        recs = cycle.record_by_nid()
        improved = 0
        for n in (3, 5, 6, 7):
            dyn = dynamic_assignment_schedule(p.hierarchy, recs, DASH(), n, 0.0)
            stat = simulate_solve(cycle, p.hierarchy, DASH(), n)
            if dyn.work_time < stat.work_time * 0.999:
                improved += 1
        assert improved >= 1

    def test_sync_cost_charged_per_epoch(self, helix4_records):
        p, cycle = helix4_records
        recs = cycle.record_by_nid()
        cfg = uniform_machine(4, flops=1e9)
        free = dynamic_assignment_schedule(p.hierarchy, recs, cfg, 4, 0.0)
        costly = dynamic_assignment_schedule(p.hierarchy, recs, cfg, 4, 1.0)
        n_epochs = p.hierarchy.height() + 1
        assert costly.work_time == pytest.approx(free.work_time + n_epochs, rel=1e-6)

    def test_invalid_processors(self, helix4_records):
        p, cycle = helix4_records
        with pytest.raises(SimulationError):
            dynamic_assignment_schedule(p.hierarchy, cycle.record_by_nid(), DASH(), 0)
        with pytest.raises(SimulationError):
            dynamic_assignment_schedule(p.hierarchy, cycle.record_by_nid(), DASH(), 33)

    def test_missing_record(self, helix4_records):
        p, _ = helix4_records
        with pytest.raises(SimulationError, match="record"):
            dynamic_assignment_schedule(p.hierarchy, {}, DASH(), 2)


class TestLargestRemainder:
    def test_proportional(self):
        assert _largest_remainder([1.0, 3.0], 4) == [1, 3]

    def test_minimum_one_each(self):
        shares = _largest_remainder([0.0, 100.0], 4)
        assert shares[0] >= 1 and sum(shares) == 4

    def test_zero_work_even_split(self):
        assert sorted(_largest_remainder([0.0, 0.0, 0.0], 5)) == [1, 2, 2]

    def test_sum_invariant(self):
        for p in range(3, 12):
            shares = _largest_remainder([5.0, 1.0, 2.0], p)
            assert sum(shares) == p
            assert all(s >= 1 for s in shares)

    def test_too_many_nodes_rejected(self):
        with pytest.raises(SimulationError):
            _largest_remainder([1.0, 1.0, 1.0], 2)


class TestProcessExecutor:
    def test_process_pool_matches_serial(self, helix2_problem):
        """Full cross-process round trip: tasks pickle, results match."""
        est = helix2_problem.initial_estimate(0)
        serial = HierarchicalSolver(helix2_problem.hierarchy, batch_size=16).run_cycle(est)
        with ProcessExecutor(2) as ex:
            par = ParallelHierarchicalSolver(
                helix2_problem.hierarchy, batch_size=16, executor=ex
            ).run_cycle(est)
        assert np.allclose(serial.estimate.mean, par.estimate.mean, atol=0, rtol=0)
        assert np.allclose(
            serial.estimate.covariance, par.estimate.covariance, atol=0, rtol=0
        )

    def test_plain_map(self):
        with ProcessExecutor(2) as ex:
            assert ex.map(abs, [-1, -2, 3]) == [1, 2, 3]
