"""Tests for repro.core.state (StructureEstimate)."""

import numpy as np
import pytest

from repro.core.state import StructureEstimate
from repro.errors import DimensionError


def make_estimate(rng, p=4):
    coords = rng.normal(0, 2, (p, 3))
    a = rng.normal(size=(3 * p, 3 * p))
    cov = a @ a.T + np.eye(3 * p)
    return StructureEstimate(coords.ravel(), cov)


class TestConstruction:
    def test_basic(self, rng):
        est = make_estimate(rng)
        assert est.dim == 12
        assert est.n_atoms == 4

    def test_cov_shape_mismatch(self):
        with pytest.raises(DimensionError, match="covariance"):
            StructureEstimate(np.zeros(6), np.zeros((5, 5)))

    def test_non_multiple_of_three(self):
        with pytest.raises(DimensionError, match="multiple of 3"):
            StructureEstimate(np.zeros(4), np.zeros((4, 4)))

    def test_from_coords_scalar_sigma(self):
        est = StructureEstimate.from_coords(np.zeros((3, 3)), sigma=2.0)
        assert np.allclose(est.covariance, 4.0 * np.eye(9))

    def test_from_coords_per_atom_sigma(self):
        est = StructureEstimate.from_coords(np.zeros((2, 3)), sigma=np.array([1.0, 3.0]))
        assert np.allclose(np.diag(est.covariance), [1, 1, 1, 9, 9, 9])

    def test_from_coords_bad_shape(self):
        with pytest.raises(DimensionError):
            StructureEstimate.from_coords(np.zeros((3, 2)))

    def test_from_coords_nonpositive_sigma(self):
        with pytest.raises(DimensionError):
            StructureEstimate.from_coords(np.zeros((2, 3)), sigma=0.0)


class TestViews:
    def test_coords_view_shares_memory(self, rng):
        est = make_estimate(rng)
        est.coords[0, 0] = 42.0
        assert est.mean[0] == 42.0

    def test_std(self, rng):
        est = StructureEstimate.from_coords(np.zeros((2, 3)), sigma=3.0)
        assert np.allclose(est.std(), 3.0)

    def test_atom_uncertainty(self):
        est = StructureEstimate.from_coords(np.zeros((2, 3)), sigma=np.array([1.0, 2.0]))
        u = est.atom_uncertainty()
        assert u.shape == (2,)
        assert u[0] == pytest.approx(np.sqrt(3.0))
        assert u[1] == pytest.approx(np.sqrt(12.0))

    def test_copy_is_independent(self, rng):
        est = make_estimate(rng)
        dup = est.copy()
        dup.mean[0] = 99.0
        dup.covariance[0, 0] = 99.0
        assert est.mean[0] != 99.0
        assert est.covariance[0, 0] != 99.0

    def test_resymmetrize(self, rng):
        est = make_estimate(rng)
        est.covariance[0, 1] += 1e-8
        est.resymmetrize()
        assert np.allclose(est.covariance, est.covariance.T)


class TestSlicing:
    def test_extract_atoms_mean(self, rng):
        est = make_estimate(rng, p=5)
        sub = est.extract_atoms(np.array([1, 3]))
        assert sub.n_atoms == 2
        assert np.allclose(sub.coords, est.coords[[1, 3]])

    def test_extract_atoms_cov_block(self, rng):
        est = make_estimate(rng, p=4)
        sub = est.extract_atoms(np.array([2]))
        assert np.allclose(sub.covariance, est.covariance[6:9, 6:9])

    def test_extract_preserves_order(self, rng):
        est = make_estimate(rng, p=4)
        sub = est.extract_atoms(np.array([3, 0]))
        assert np.allclose(sub.coords[0], est.coords[3])
        assert np.allclose(sub.coords[1], est.coords[0])

    def test_block_diagonal(self, rng):
        a = make_estimate(rng, p=2)
        b = make_estimate(rng, p=1)
        joined = StructureEstimate.block_diagonal([a, b])
        assert joined.n_atoms == 3
        assert np.allclose(joined.covariance[:6, :6], a.covariance)
        assert np.allclose(joined.covariance[6:, 6:], b.covariance)
        assert np.allclose(joined.covariance[:6, 6:], 0.0)

    def test_block_diagonal_empty(self):
        with pytest.raises(DimensionError):
            StructureEstimate.block_diagonal([])

    def test_scatter_roundtrip(self, rng):
        est = make_estimate(rng, p=5)
        atoms = np.array([1, 4])
        sub = est.extract_atoms(atoms)
        target = est.copy()
        target.mean[:] = 0
        target.covariance[:] = 0
        sub.scatter_into(target, atoms)
        assert np.allclose(target.coords[[1, 4]], est.coords[[1, 4]])
        cols = np.array([3, 4, 5, 12, 13, 14])
        assert np.allclose(
            target.covariance[np.ix_(cols, cols)], est.covariance[np.ix_(cols, cols)]
        )

    def test_scatter_size_mismatch(self, rng):
        est = make_estimate(rng, p=3)
        sub = est.extract_atoms(np.array([0]))
        with pytest.raises(DimensionError):
            sub.scatter_into(est, np.array([0, 1]))


class TestRmsd:
    def test_zero_for_identical(self, rng):
        est = make_estimate(rng)
        assert est.rmsd(est.coords) == 0.0

    def test_known_value(self):
        est = StructureEstimate.from_coords(np.zeros((2, 3)), sigma=1.0)
        other = np.full((2, 3), 1.0)
        assert est.rmsd(other) == pytest.approx(np.sqrt(3.0))

    def test_size_mismatch(self, rng):
        est = make_estimate(rng)
        with pytest.raises(DimensionError):
            est.rmsd(np.zeros((2, 3)))
