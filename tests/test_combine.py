"""Tests for the Figure 3 combination of independent updates."""

import numpy as np
import pytest

from repro.constraints import LinearConstraint
from repro.constraints.batch import ConstraintBatch
from repro.core.combine import combine_estimates, combine_tournament
from repro.core.state import StructureEstimate
from repro.core.update import apply_batch
from repro.errors import DimensionError


def linear_cons(rng, n_cons, atoms=(0, 1)):
    out = []
    for _ in range(n_cons):
        a = rng.normal(size=(1, 3 * len(atoms)))
        out.append(LinearConstraint(atoms, a, rng.normal(size=1), np.array([0.4])))
    return out


@pytest.fixture
def shared_prior(rng):
    return StructureEstimate.from_coords(rng.normal(0, 2, (2, 3)), sigma=1.5)


class TestCombineEstimates:
    def test_equals_sequential_application(self, rng, shared_prior):
        """The core Figure 3 guarantee: combining posteriors from disjoint
        linear constraint subsets == applying both subsets sequentially."""
        set1 = linear_cons(rng, 3)
        set2 = linear_cons(rng, 2)
        post1 = apply_batch(shared_prior, ConstraintBatch(tuple(set1)))
        post2 = apply_batch(shared_prior, ConstraintBatch(tuple(set2)))
        combined = combine_estimates(shared_prior, post1, post2)
        sequential = apply_batch(post1, ConstraintBatch(tuple(set2)))
        assert np.allclose(combined.mean, sequential.mean, atol=1e-8)
        assert np.allclose(combined.covariance, sequential.covariance, atol=1e-8)

    def test_symmetric_in_arguments(self, rng, shared_prior):
        set1 = linear_cons(rng, 2)
        set2 = linear_cons(rng, 2)
        post1 = apply_batch(shared_prior, ConstraintBatch(tuple(set1)))
        post2 = apply_batch(shared_prior, ConstraintBatch(tuple(set2)))
        ab = combine_estimates(shared_prior, post1, post2)
        ba = combine_estimates(shared_prior, post2, post1)
        assert np.allclose(ab.mean, ba.mean, atol=1e-9)
        assert np.allclose(ab.covariance, ba.covariance, atol=1e-9)

    def test_combining_with_prior_is_identity(self, rng, shared_prior):
        """Combining a posterior with an unchanged copy of the prior must
        return the posterior (the copy added no information)."""
        post = apply_batch(shared_prior, ConstraintBatch(tuple(linear_cons(rng, 2))))
        combined = combine_estimates(shared_prior, post, shared_prior.copy())
        assert np.allclose(combined.mean, post.mean, atol=1e-8)
        assert np.allclose(combined.covariance, post.covariance, atol=1e-8)

    def test_result_symmetric_psd(self, rng, shared_prior):
        set1 = linear_cons(rng, 2)
        set2 = linear_cons(rng, 2)
        post1 = apply_batch(shared_prior, ConstraintBatch(tuple(set1)))
        post2 = apply_batch(shared_prior, ConstraintBatch(tuple(set2)))
        combined = combine_estimates(shared_prior, post1, post2)
        assert np.allclose(combined.covariance, combined.covariance.T)
        assert np.all(np.linalg.eigvalsh(combined.covariance) > -1e-10)

    def test_dim_mismatch(self, rng, shared_prior):
        other = StructureEstimate.from_coords(rng.normal(size=(3, 3)), sigma=1.0)
        with pytest.raises(DimensionError):
            combine_estimates(shared_prior, shared_prior, other)


class TestTournament:
    def test_three_way_matches_sequential(self, rng, shared_prior):
        sets = [linear_cons(rng, 2) for _ in range(3)]
        posts = [
            apply_batch(shared_prior, ConstraintBatch(tuple(s))) for s in sets
        ]
        combined = combine_tournament(shared_prior, posts)
        sequential = shared_prior
        for s in sets:
            sequential = apply_batch(sequential, ConstraintBatch(tuple(s)))
        assert np.allclose(combined.mean, sequential.mean, atol=1e-7)
        assert np.allclose(combined.covariance, sequential.covariance, atol=1e-7)

    def test_single_posterior_passthrough(self, rng, shared_prior):
        post = apply_batch(shared_prior, ConstraintBatch(tuple(linear_cons(rng, 1))))
        assert combine_tournament(shared_prior, [post]) is post

    def test_empty_rejected(self, shared_prior):
        with pytest.raises(DimensionError):
            combine_tournament(shared_prior, [])
