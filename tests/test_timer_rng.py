"""Tests for repro.util.timer and repro.util.rng."""

import numpy as np
import pytest

from repro.util.rng import make_rng
from repro.util.timer import Timer, WallClock


class FakeClock(WallClock):
    def __init__(self):
        self.t = 0.0

    def now(self):
        return self.t


class TestTimer:
    def test_accumulates_regions(self):
        clock = FakeClock()
        timer = Timer(clock=clock)
        with timer:
            clock.t = 2.0
        with timer:
            clock.t = 5.0
        assert timer.elapsed == pytest.approx(5.0)

    def test_nested_regions_rejected(self):
        timer = Timer(clock=FakeClock())
        with timer:
            with pytest.raises(RuntimeError, match="nested"):
                timer.__enter__()
            timer._start = 0.0  # restore so __exit__ is consistent

    def test_reset(self):
        clock = FakeClock()
        timer = Timer(clock=clock)
        with timer:
            clock.t = 1.0
        timer.reset()
        assert timer.elapsed == 0.0

    def test_reset_while_running_rejected(self):
        timer = Timer(clock=FakeClock())
        with timer:
            with pytest.raises(RuntimeError, match="running"):
                timer.reset()

    def test_real_clock_monotone(self):
        timer = Timer()
        with timer:
            pass
        assert timer.elapsed >= 0.0


class TestMakeRng:
    def test_none_is_deterministic(self):
        a = make_rng(None).normal(size=5)
        b = make_rng(None).normal(size=5)
        assert np.array_equal(a, b)

    def test_seed_reproducible(self):
        assert np.array_equal(
            make_rng(42).normal(size=3), make_rng(42).normal(size=3)
        )

    def test_different_seeds_differ(self):
        assert not np.array_equal(
            make_rng(1).normal(size=3), make_rng(2).normal(size=3)
        )

    def test_generator_passthrough(self):
        g = np.random.default_rng(7)
        assert make_rng(g) is g
