"""Tests for the convergence loop and its diagnostics."""

import numpy as np
import pytest

from repro.core.convergence import ConvergenceReport, iterate_to_convergence
from repro.core.state import StructureEstimate
from repro.errors import ConvergenceError


def make_estimate(value=0.0):
    return StructureEstimate.from_coords(np.full((1, 3), value), sigma=1.0)


class TestIterateToConvergence:
    def test_contraction_converges(self):
        """A cycle halving the mean's distance to 1 must converge to 1."""

        def cycle(est):
            new = est.copy()
            new.mean[:] = 1.0 + 0.5 * (est.mean - 1.0)
            return new

        report = iterate_to_convergence(cycle, make_estimate(0.0), max_cycles=60, tol=1e-8)
        assert report.converged
        assert np.allclose(report.estimate.mean, 1.0, atol=1e-6)

    def test_deltas_monotone_for_contraction(self):
        def cycle(est):
            new = est.copy()
            new.mean[:] = 0.5 * est.mean
            return new

        report = iterate_to_convergence(cycle, make_estimate(8.0), max_cycles=30, tol=1e-10)
        assert all(b <= a for a, b in zip(report.deltas, report.deltas[1:]))

    def test_identity_converges_immediately(self):
        report = iterate_to_convergence(lambda e: e.copy(), make_estimate(), max_cycles=5)
        assert report.converged
        assert report.cycles == 1

    def test_non_convergence_reported(self):
        def cycle(est):
            new = est.copy()
            new.mean[:] = est.mean + 1.0
            return new

        report = iterate_to_convergence(cycle, make_estimate(), max_cycles=3, tol=1e-9)
        assert not report.converged
        assert report.cycles == 3
        assert len(report.deltas) == 3

    def test_raise_on_failure(self):
        def cycle(est):
            new = est.copy()
            new.mean[:] = est.mean + 1.0
            return new

        with pytest.raises(ConvergenceError, match="no convergence"):
            iterate_to_convergence(
                cycle, make_estimate(), max_cycles=2, tol=1e-9, raise_on_failure=True
            )

    def test_invalid_max_cycles(self):
        with pytest.raises(ConvergenceError):
            iterate_to_convergence(lambda e: e, make_estimate(), max_cycles=0)

    def test_covariance_reset_restores_prior(self):
        """With reset_covariance, every cycle must see the prior covariance."""
        prior_var = 4.0
        est = StructureEstimate.from_coords(np.zeros((1, 3)), sigma=np.sqrt(prior_var))
        seen = []

        def cycle(e):
            seen.append(float(e.covariance[0, 0]))
            new = e.copy()
            new.covariance[:] *= 0.01  # pretend the cycle collapsed it
            new.mean[:] = e.mean + 1.0 / (len(seen) ** 2)
            return new

        iterate_to_convergence(cycle, est, max_cycles=4, tol=1e-9)
        assert all(v == pytest.approx(prior_var) for v in seen)

    def test_no_reset_carries_covariance(self):
        est = StructureEstimate.from_coords(np.zeros((1, 3)), sigma=2.0)
        seen = []

        def cycle(e):
            seen.append(float(e.covariance[0, 0]))
            new = e.copy()
            new.covariance[:] *= 0.5
            new.mean[:] = e.mean + 0.5 ** len(seen)
            return new

        iterate_to_convergence(cycle, est, max_cycles=3, tol=1e-9, reset_covariance=False)
        assert seen[1] == pytest.approx(seen[0] * 0.5)

    def test_cycles_to_threshold(self):
        report = ConvergenceReport(make_estimate(), 3, deltas=[1.0, 0.1, 0.01])
        assert report.cycles_to(0.5) == 2
        assert report.cycles_to(1e-6) is None
