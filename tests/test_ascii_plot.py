"""Tests for the terminal plotting helper."""

import pytest

from repro.experiments.ascii_plot import PlotError, line_plot, speedup_plot


class TestLinePlot:
    def test_basic_render(self):
        text = line_plot([1, 2, 3, 4], {"a": [1, 2, 3, 4]}, title="T")
        assert text.startswith("T\n")
        assert "o=a" in text
        assert "o" in text

    def test_multiple_series_glyphs(self):
        text = line_plot([1, 2, 3], {"a": [1, 2, 3], "b": [3, 2, 1]})
        assert "o=a" in text and "x=b" in text
        assert "x" in text

    def test_log_axes(self):
        text = line_plot(
            [1, 10, 100], {"a": [1, 100, 10000]}, logx=True, logy=True,
            xlabel="n", ylabel="t",
        )
        assert "(log)" in text

    def test_log_rejects_nonpositive(self):
        with pytest.raises(PlotError, match="positive"):
            line_plot([0, 1], {"a": [1, 2]}, logx=True)

    def test_length_mismatch(self):
        with pytest.raises(PlotError, match="length"):
            line_plot([1, 2, 3], {"a": [1, 2]})

    def test_too_small(self):
        with pytest.raises(PlotError, match="legible"):
            line_plot([1, 2], {"a": [1, 2]}, width=5)

    def test_needs_two_points(self):
        with pytest.raises(PlotError, match="two points"):
            line_plot([1], {"a": [1]})

    def test_needs_series(self):
        with pytest.raises(PlotError, match="at least one series"):
            line_plot([1, 2], {})

    def test_constant_series_ok(self):
        text = line_plot([1, 2, 3], {"flat": [5.0, 5.0, 5.0]})
        assert "o" in text

    def test_monotone_series_direction(self):
        """An increasing series' glyph must appear higher (earlier row) at
        the right edge than at the left edge."""
        text = line_plot([1, 2, 3, 4], {"up": [1, 2, 3, 4]}, width=20, height=10)
        rows = [l for l in text.splitlines() if "|" in l]
        first_rows = [i for i, r in enumerate(rows) if "o" in r.split("|")[1][:4]]
        last_rows = [i for i, r in enumerate(rows) if "o" in r.split("|")[1][-4:]]
        assert min(last_rows) < min(first_rows)


class TestSpeedupPlot:
    def test_includes_ideal(self):
        text = speedup_plot([1, 2, 4], {"ours": [1.0, 1.9, 3.7]})
        assert "o=ideal" in text and "x=ours" in text
        assert "processors" in text
