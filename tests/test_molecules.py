"""Tests for the molecule generators (helix, ribosome, geometry, problem)."""

import numpy as np
import pytest

from repro.constraints.distance import DistanceConstraint
from repro.constraints.position import PositionConstraint
from repro.molecules.geometry import all_pairs, knn_pairs, pairwise_distances
from repro.molecules.perturb import perturbed_estimate
from repro.molecules.ribosome import N_DOMAINS, N_PROTEINS, build_ribo30s
from repro.molecules.rna import (
    BASE_LIBRARY,
    PAIR_PATTERN,
    build_helix,
    helix_atom_count,
    pair_sequence,
)
from repro.molecules.superpose import superpose, superposed_rmsd
from repro.errors import DimensionError, HierarchyError


class TestGeometryHelpers:
    def test_pairwise_distances(self, rng):
        a = rng.normal(size=(3, 3))
        b = rng.normal(size=(4, 3))
        d = pairwise_distances(a, b)
        assert d.shape == (3, 4)
        assert d[1, 2] == pytest.approx(np.linalg.norm(a[1] - b[2]))

    def test_all_pairs_count(self):
        assert len(all_pairs(np.arange(5))) == 10

    def test_all_pairs_sorted_tuples(self):
        pairs = all_pairs(np.array([3, 1, 2]))
        assert all(u < v for u, v in pairs)

    def test_knn_pairs_symmetric_union(self, rng):
        coords = rng.normal(0, 5, (10, 3))
        ga, gb = np.arange(5), np.arange(5, 10)
        pairs = knn_pairs(coords, ga, gb, 2)
        assert all(u < v for u, v in pairs)
        # every atom appears in at least one pair (it has 2 nearest links)
        seen = {u for u, v in pairs} | {v for u, v in pairs}
        assert seen == set(range(10))

    def test_knn_k_larger_than_group(self, rng):
        coords = rng.normal(size=(4, 3))
        pairs = knn_pairs(coords, np.array([0, 1]), np.array([2, 3]), 99)
        assert len(pairs) == 4  # complete bipartite, deduplicated


class TestHelixAtoms:
    def test_base_library_sizes(self):
        totals = {s: b.total_atoms for s, b in BASE_LIBRARY.items()}
        assert totals == {"A": 22, "U": 21, "G": 22, "C": 20}

    def test_pair_pattern(self):
        assert PAIR_PATTERN[0] == ("A", "U")
        assert len(PAIR_PATTERN) == 4

    @pytest.mark.parametrize(
        "length,expected", [(1, 43), (2, 86), (4, 170), (8, 340), (16, 680)]
    )
    def test_table1_atom_counts_exact(self, length, expected):
        assert helix_atom_count(length) == expected

    def test_pair_sequence_repeats(self):
        seq = pair_sequence(6)
        assert seq[4] == seq[0] and seq[5] == seq[1]

    def test_invalid_length(self):
        with pytest.raises(HierarchyError):
            build_helix(0)


class TestHelixProblem:
    @pytest.fixture(scope="class")
    def helix4(self):
        p = build_helix(4)
        p.assign()
        return p

    def test_coords_shape(self, helix4):
        assert helix4.true_coords.shape == (170, 3)

    def test_constraint_rows_near_paper(self, helix4):
        # Paper: 3294 rows for the 4-bp helix; generator must be within 5 %.
        assert abs(helix4.n_constraint_rows - 3294) / 3294 < 0.05

    def test_five_categories_present(self, helix4):
        counts = helix4.metadata["category_counts"]
        assert set(counts) == {1, 2, 3, 4, 5}
        assert all(v > 0 for v in counts.values())

    def test_all_constraints_are_distances(self, helix4):
        assert all(isinstance(c, DistanceConstraint) for c in helix4.constraints)

    def test_targets_match_true_geometry(self, helix4):
        coords = helix4.true_coords
        for c in helix4.constraints[::500]:
            d = np.linalg.norm(coords[c.i] - coords[c.j])
            assert c.target[0] == pytest.approx(d)

    def test_hierarchy_structure_figure2(self, helix4):
        h = helix4.hierarchy
        # 4 bp: root, 2 sub-helices, 4 pairs, 8 bases, 16 bb/sc leaves = 31
        assert len(h) == 31
        assert len(h.leaves()) == 16
        assert h.height() == 4

    def test_hierarchy_valid(self, helix4):
        helix4.hierarchy.validate()

    def test_category_to_level_mapping(self, helix4):
        """Categories 1-2 at leaves, 3 at bases, 4 at pairs, 5 above."""
        h = helix4.hierarchy
        counts = helix4.metadata["category_counts"]
        rows_by_level = h.constraint_rows_by_level()
        assert rows_by_level[4] == counts[1] + counts[2]      # leaves
        assert rows_by_level[3] == counts[3]                  # bases
        assert rows_by_level[2] == counts[4]                  # pairs
        above = sum(rows_by_level.get(l, 0) for l in (0, 1))
        assert above == counts[5]

    def test_atoms_unique_overall(self, helix4):
        atoms = helix4.hierarchy.root.atoms
        assert np.unique(atoms).size == helix4.n_atoms

    def test_no_degenerate_distances(self, helix4):
        assert all(c.target[0] > 0.3 for c in helix4.constraints)

    def test_deterministic(self):
        a = build_helix(2)
        b = build_helix(2)
        assert np.array_equal(a.true_coords, b.true_coords)
        assert a.n_constraint_rows == b.n_constraint_rows


class TestRibosomeProblem:
    @pytest.fixture(scope="class")
    def ribo(self):
        p = build_ribo30s()
        p.assign()
        return p

    def test_paper_scale(self, ribo):
        assert abs(ribo.n_atoms - 900) <= 10
        assert abs(ribo.n_constraint_rows - 6500) / 6500 < 0.05

    def test_protein_anchors(self, ribo):
        anchors = [c for c in ribo.constraints if isinstance(c, PositionConstraint)]
        assert len(anchors) == N_PROTEINS

    def test_hierarchy_branching_factor_high(self, ribo):
        """The ribo tree's root must branch more than the helix's binary
        tree — the property behind the absence of speedup dips."""
        assert len(ribo.hierarchy.root.children) >= N_DOMAINS

    def test_domain_children_include_proteins(self, ribo):
        domain = ribo.hierarchy.root.children[0]
        names = {c.name for c in domain.children}
        assert any("protein" in n for n in names)

    def test_hierarchy_valid(self, ribo):
        ribo.hierarchy.validate()

    def test_deterministic_per_seed(self):
        a = build_ribo30s(seed=1)
        b = build_ribo30s(seed=1)
        assert np.array_equal(a.true_coords, b.true_coords)

    def test_seeds_differ(self):
        a = build_ribo30s(seed=1)
        b = build_ribo30s(seed=2)
        assert not np.array_equal(a.true_coords, b.true_coords)

    def test_category_counts_recorded(self, ribo):
        counts = ribo.metadata["category_counts"]
        assert counts["protein_anchor"] == N_PROTEINS
        assert counts["within_segment"] > 0
        assert counts["helix_helix_domain"] > 0

    def test_cross_domain_rows_at_root(self, ribo):
        assert ribo.hierarchy.root.n_constraint_rows > 0


class TestProblemAndPerturb:
    def test_initial_estimate_deterministic(self, helix2_problem):
        a = helix2_problem.initial_estimate(7)
        b = helix2_problem.initial_estimate(7)
        assert np.array_equal(a.mean, b.mean)

    def test_initial_estimate_displaced(self, helix2_problem):
        est = helix2_problem.initial_estimate(0)
        assert est.rmsd(helix2_problem.true_coords) > 0.1

    def test_perturbed_estimate_prior(self):
        est = perturbed_estimate(np.zeros((2, 3)), 0.0, 3.0, seed=0)
        assert np.allclose(est.coords, 0.0)
        assert np.allclose(np.diag(est.covariance), 9.0)

    def test_perturb_validation(self):
        with pytest.raises(DimensionError):
            perturbed_estimate(np.zeros((2, 2)), 1.0, 1.0)
        with pytest.raises(DimensionError):
            perturbed_estimate(np.zeros((2, 3)), -1.0, 1.0)
        with pytest.raises(DimensionError):
            perturbed_estimate(np.zeros((2, 3)), 1.0, 0.0)

    def test_state_dim(self, helix2_problem):
        assert helix2_problem.state_dim == 3 * helix2_problem.n_atoms


class TestSuperpose:
    def test_recovers_rotation(self, rng):
        coords = rng.normal(0, 2, (10, 3))
        theta = 0.7
        rot = np.array(
            [
                [np.cos(theta), -np.sin(theta), 0],
                [np.sin(theta), np.cos(theta), 0],
                [0, 0, 1.0],
            ]
        )
        moved = coords @ rot.T + np.array([5.0, -3.0, 2.0])
        assert superposed_rmsd(moved, coords) < 1e-10

    def test_mirror_allowed(self, rng):
        coords = rng.normal(0, 2, (10, 3))
        mirrored = coords * np.array([-1.0, 1.0, 1.0])
        assert superposed_rmsd(mirrored, coords) < 1e-10

    def test_detects_real_difference(self, rng):
        coords = rng.normal(0, 2, (10, 3))
        other = coords + rng.normal(0, 1.0, coords.shape)
        assert superposed_rmsd(other, coords) > 0.1

    def test_shape_mismatch(self, rng):
        with pytest.raises(DimensionError):
            superpose(rng.normal(size=(3, 3)), rng.normal(size=(4, 3)))
