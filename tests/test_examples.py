"""Smoke tests: the example scripts must run end to end.

Only the fast examples run in the suite (the ribosome and speedup-study
scripts take minutes on a slow host); they execute in-process via runpy
so coverage and import errors surface normally.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.skipif(not EXAMPLES.exists(), reason="examples directory missing")
class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "converged: True" in out
        assert "final RMSD to truth" in out

    def test_custom_molecule_decomposition(self, capsys):
        out = run_example("custom_molecule_decomposition.py", capsys)
        assert "graph-kl" in out
        assert "solved with graph-kl hierarchy" in out

    def test_helix_reconstruction(self, capsys):
        out = run_example("helix_reconstruction.py", capsys)
        assert "FLOP ratio" in out
        assert "shape error" in out

    def test_all_examples_present(self):
        names = {p.name for p in EXAMPLES.glob("*.py")}
        assert {
            "quickstart.py",
            "helix_reconstruction.py",
            "ribosome_30s.py",
            "parallel_speedup_study.py",
            "custom_molecule_decomposition.py",
            "protein_noe_bounds.py",
            "diagnostics_and_export.py",
        } <= names

    def test_diagnostics_and_export(self, capsys):
        out = run_example("diagnostics_and_export.py", capsys)
        assert "after round 2" in out
        assert "no outliers flagged" in out
