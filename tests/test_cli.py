"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro import io as rio
from repro.cli import build_parser, main


@pytest.fixture
def helix_file(tmp_path):
    path = tmp_path / "helix2.npz"
    assert main(["generate", "helix", "--length", "2", "--out", str(path)]) == 0
    return path


class TestGenerate:
    def test_helix(self, helix_file):
        problem = rio.load_problem(helix_file)
        assert problem.n_atoms == 86

    def test_protein(self, tmp_path):
        out = tmp_path / "prot.npz"
        assert main(["generate", "protein", "--out", str(out)]) == 0
        assert rio.load_problem(out).name == "protein"

    def test_prints_summary(self, tmp_path, capsys):
        out = tmp_path / "h.npz"
        main(["generate", "helix", "--length", "1", "--out", str(out)])
        captured = capsys.readouterr().out
        assert "43 atoms" in captured


class TestInfo:
    def test_reports_structure(self, helix_file, capsys):
        assert main(["info", str(helix_file)]) == 0
        out = capsys.readouterr().out
        assert "atoms:" in out and "86" in out
        assert "leaf capture" in out


class TestSolve:
    def test_solves_and_writes(self, helix_file, tmp_path, capsys):
        est_path = tmp_path / "est.npz"
        code = main(
            [
                "solve",
                str(helix_file),
                "--cycles",
                "3",
                "--out",
                str(est_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mean |residual|" in out
        est = rio.load_estimate(est_path)
        assert est.n_atoms == 86

    def test_alternative_decomposition(self, helix_file, capsys):
        assert (
            main(
                [
                    "solve",
                    str(helix_file),
                    "--decomposition",
                    "rcb",
                    "--cycles",
                    "2",
                ]
            )
            == 0
        )

    def test_anneal_flag(self, helix_file, capsys):
        assert (
            main(["solve", str(helix_file), "--cycles", "2", "--anneal", "10,0.5"])
            == 0
        )

    def test_bad_anneal_flag(self, helix_file):
        with pytest.raises(SystemExit):
            main(["solve", str(helix_file), "--anneal", "banana"])

    def test_batch_anneal_flag(self, helix_file, capsys):
        code = main(
            ["solve", str(helix_file), "--cycles", "2",
             "--batch-anneal", "10,0.5,2"]
        )
        assert code == 0
        assert "mean |residual|" in capsys.readouterr().out

    def test_bad_batch_anneal_flag(self, helix_file):
        with pytest.raises(SystemExit, match="batch-anneal"):
            main(["solve", str(helix_file), "--batch-anneal", "banana"])
        with pytest.raises(SystemExit, match="batch-anneal"):
            main(["solve", str(helix_file), "--batch-anneal", "0.2,0.5"])

    def test_batch_anneal_composes_with_session(self, helix_file, tmp_path):
        sdir = tmp_path / "sess"
        code = main(
            ["solve", str(helix_file), "--cycles", "2",
             "--batch-anneal", "8,0.5", "--session-dir", str(sdir)]
        )
        assert code == 0
        assert (
            main(["resolve", "--session-dir", str(sdir),
                  "--add", "dist:0:9:4.1:0.01"])
            == 0
        )


class TestSessionCLI:
    @pytest.fixture
    def session_dir(self, helix_file, tmp_path, capsys):
        sdir = tmp_path / "session"
        code = main(
            [
                "solve",
                str(helix_file),
                "--cycles",
                "3",
                "--session-dir",
                str(sdir),
            ]
        )
        assert code == 0
        assert "session saved to" in capsys.readouterr().out
        return sdir

    def test_resolve_add(self, session_dir, tmp_path, capsys):
        est_path = tmp_path / "warm.npz"
        code = main(
            [
                "resolve",
                "--session-dir",
                str(session_dir),
                "--add",
                "dist:0:1:1.5:0.01",
                "--out",
                str(est_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "added constraint ids:" in out
        assert "re-solved" in out and "cached" in out
        assert rio.load_estimate(est_path).n_atoms == 86

    def test_resolve_drop(self, session_dir, capsys):
        # Drop the constraint id printed by a previous add.
        main(["resolve", "--session-dir", str(session_dir), "--add", "dist:0:1:1.5"])
        out = capsys.readouterr().out
        cid = out.split("added constraint ids: ")[1].splitlines()[0].strip()
        assert (
            main(["resolve", "--session-dir", str(session_dir), "--drop", cid]) == 0
        )
        assert "dropped 1 constraints" in capsys.readouterr().out

    def test_resolve_full_scope(self, session_dir, capsys):
        assert (
            main(
                [
                    "resolve",
                    "--session-dir",
                    str(session_dir),
                    "--scope",
                    "full",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "re-solved 15/15 nodes" in out

    def test_session_dir_rejects_anneal(self, helix_file, tmp_path):
        with pytest.raises(SystemExit, match="anneal"):
            main(
                [
                    "solve",
                    str(helix_file),
                    "--session-dir",
                    str(tmp_path / "s"),
                    "--anneal",
                    "10,0.5",
                ]
            )

    def test_session_dir_rejects_checkpoint_dir(self, helix_file, tmp_path):
        with pytest.raises(SystemExit, match="exclusive"):
            main(
                [
                    "solve",
                    str(helix_file),
                    "--session-dir",
                    str(tmp_path / "s"),
                    "--checkpoint-dir",
                    str(tmp_path / "ck"),
                ]
            )

    def test_bad_constraint_spec(self, session_dir):
        with pytest.raises(SystemExit):
            main(
                [
                    "resolve",
                    "--session-dir",
                    str(session_dir),
                    "--add",
                    "banana",
                ]
            )


class TestSimulate:
    def test_table_output(self, helix_file, capsys):
        assert (
            main(
                [
                    "simulate",
                    str(helix_file),
                    "--machine",
                    "dash",
                    "--processors",
                    "1,2,4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "simulated DASH" in out
        assert "spdup" in out

    def test_challenge(self, helix_file, capsys):
        assert (
            main(
                [
                    "simulate",
                    str(helix_file),
                    "--machine",
                    "challenge",
                    "--processors",
                    "1,2",
                ]
            )
            == 0
        )
        assert "Challenge" in capsys.readouterr().out


class TestFuzz:
    def test_sweep_passes_and_reports(self, tmp_path, capsys):
        out = tmp_path / "fuzz.json"
        code = main(
            ["fuzz", "--seed", "0", "--budget", "3",
             "--checks", "fast_vs_reference,warm_equals_cold",
             "--out", str(out)]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "3 passed, 0 failed" in printed
        import json

        doc = json.loads(out.read_text())
        assert doc["ok"] and doc["ran"] == 3
        assert len(doc["scenarios"]) == 3

    def test_streaming_rollup_printed(self, capsys):
        assert (
            main(["fuzz", "--seed", "0", "--budget", "2",
                  "--checks", "streaming"])
            == 0
        )
        assert "streaming:" in capsys.readouterr().out

    def test_unknown_check_rejected(self):
        with pytest.raises(SystemExit, match="unknown"):
            main(["fuzz", "--budget", "1", "--checks", "vibes"])

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit, match="backend"):
            main(["fuzz", "--budget", "1", "--backends", "gpu"])

    def test_failure_writes_artifact_and_exits_nonzero(
        self, tmp_path, monkeypatch, capsys
    ):
        """With a sabotaged fast kernel the sweep must fail, minimize the
        seed, and leave a reproducible artifact."""
        from repro.linalg.fast import trsm_right as real_trsm

        def broken(lower, b, **kwargs):
            result = real_trsm(lower, b, **kwargs)
            result *= 1.0 + 1e-6
            return result

        monkeypatch.setattr("repro.core.update.trsm_right", broken)
        artifact = tmp_path / "failing.json"
        code = main(
            ["fuzz", "--seed", "0", "--budget", "1",
             "--checks", "fast_vs_reference", "--minimize",
             "--fail-artifact", str(artifact)]
        )
        assert code == 1
        assert "FAIL" in capsys.readouterr().out
        import json

        doc = json.loads(artifact.read_text())
        entry = doc["failures"][0]
        assert entry["seed"] == 0
        assert entry["failed_checks"] == ["fast_vs_reference"]
        assert "repro fuzz --seed 0" in entry["repro"]
        minimized = entry["minimized_spec"]
        assert minimized["n_constraints"] <= entry["spec"]["n_constraints"]

    def test_time_budget_stops_early(self, capsys):
        code = main(
            ["fuzz", "--seed", "0", "--budget", "50",
             "--checks", "fast_vs_reference", "--time-budget", "0.01"]
        )
        assert code == 0
        assert "time budget exhausted" in capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "dna", "--out", "x.npz"])
