"""Tests for the row-partitioned intra-node parallel kernels (§4.1)."""

import numpy as np
import pytest

from repro.errors import DimensionError
from repro.linalg.cholesky import cholesky_factor
from repro.linalg.counters import OpCategory, recording
from repro.linalg.kernels import gemm, outer_update
from repro.linalg.parallel_kernels import MIN_STRIP_ROWS, ParallelKernels
from repro.linalg.triangular import solve_lower, solve_upper


def spd(rng, n):
    a = rng.normal(size=(n, n))
    return a @ a.T + n * np.eye(n)


@pytest.fixture(params=[1, 2, 4])
def kernels(request):
    with ParallelKernels(request.param) as pk:
        yield pk


class TestGemm:
    def test_bit_identical_to_serial(self, kernels, rng):
        a = rng.normal(size=(200, 64))
        b = rng.normal(size=(64, 48))
        assert np.array_equal(kernels.gemm(a, b), a @ b)

    def test_small_matrix_single_strip(self, kernels, rng):
        a = rng.normal(size=(8, 8))
        b = rng.normal(size=(8, 8))
        with recording() as rec:
            kernels.gemm(a, b)
        n_strips = rec.events[0].shape[3]
        assert n_strips == 1  # below MIN_STRIP_ROWS: no split

    def test_large_matrix_splits(self, rng):
        with ParallelKernels(4) as pk:
            a = rng.normal(size=(4 * MIN_STRIP_ROWS, 16))
            b = rng.normal(size=(16, 16))
            with recording() as rec:
                pk.gemm(a, b)
            assert rec.events[0].shape[3] == 4

    def test_flops_match_serial(self, kernels, rng):
        a = rng.normal(size=(100, 30))
        b = rng.normal(size=(30, 20))
        with recording() as rec_par:
            kernels.gemm(a, b)
        with recording() as rec_ser:
            gemm(a, b)
        assert rec_par.events[0].flops == rec_ser.events[0].flops

    def test_dimension_mismatch(self, kernels):
        with pytest.raises(DimensionError):
            kernels.gemm(np.zeros((2, 3)), np.zeros((4, 2)))


class TestOuterUpdate:
    def test_bit_identical_to_serial(self, kernels, rng):
        n, m = 150, 16
        c = spd(rng, n)
        k = rng.normal(size=(n, m))
        cht = rng.normal(size=(n, m))
        assert np.array_equal(
            kernels.outer_update(c, k, cht), outer_update(c, k, cht)
        )

    def test_category(self, kernels, rng):
        with recording() as rec:
            kernels.outer_update(spd(rng, 70), rng.normal(size=(70, 4)), rng.normal(size=(70, 4)))
        assert rec.events[0].category is OpCategory.MATMAT

    def test_shape_mismatch(self, kernels, rng):
        with pytest.raises(DimensionError):
            kernels.outer_update(spd(rng, 4), np.zeros((4, 2)), np.zeros((4, 3)))


class TestSolveGain:
    def test_matches_sequential_solves(self, kernels, rng):
        m, n = 12, 200
        s = spd(rng, m)
        lower = cholesky_factor(s)
        cht = rng.normal(size=(n, m))
        k_par = kernels.solve_gain(lower, cht)
        k_ser = solve_upper(lower.T, solve_lower(lower, cht.T)).T
        assert np.allclose(k_par, k_ser, atol=1e-12)

    def test_solves_the_system(self, kernels, rng):
        m, n = 8, 100
        s = spd(rng, m)
        lower = cholesky_factor(s)
        cht = rng.normal(size=(n, m))
        k = kernels.solve_gain(lower, cht)
        assert np.allclose(k @ s, cht, atol=1e-9)

    def test_category_sys(self, kernels, rng):
        s = spd(rng, 4)
        lower = cholesky_factor(s)
        with recording() as rec:
            kernels.solve_gain(lower, rng.normal(size=(10, 4)))
        assert rec.events[-1].category is OpCategory.SYSTEM

    def test_shape_mismatch(self, kernels, rng):
        with pytest.raises(DimensionError):
            kernels.solve_gain(np.eye(3), rng.normal(size=(5, 4)))


class TestLifecycle:
    def test_invalid_threads(self):
        with pytest.raises(DimensionError):
            ParallelKernels(0)

    def test_single_thread_has_no_pool(self):
        pk = ParallelKernels(1)
        assert pk._pool is None
        pk.close()  # must be a no-op

    def test_context_manager(self, rng):
        with ParallelKernels(2) as pk:
            out = pk.gemm(np.eye(4), np.eye(4))
        assert np.allclose(out, np.eye(4))
