"""Worker-crash recovery contract for every executor backend.

All three backends must satisfy the same contract: a task lost to a
crashed worker — injected soft crash, injected hard kill, or a real dead
process — is detected and resubmitted (bounded rounds), results come back
complete and in submission order, and exhausting the resubmit budget
raises :class:`~repro.errors.WorkerCrashError`.
"""

import os

import pytest

from repro.errors import WorkerCrashError
from repro.faults import FaultConfig, FaultInjector, fault_injection
from repro.parallel.executors import ProcessExecutor, SerialExecutor, ThreadExecutor

BACKENDS = ["serial", "thread", "process"]


# Module-level so the process backend can pickle them.
def double(x):
    return 2 * x


def always_crash(x):
    raise WorkerCrashError(f"task {x} always crashes")


def die_once(token_path):
    """Hard-kill the worker process the first time it sees ``token_path``."""
    if not os.path.exists(token_path):
        with open(token_path, "w") as fh:
            fh.write("died")
        os._exit(1)
    return "survived"


@pytest.fixture(params=BACKENDS)
def executor(request):
    if request.param == "serial":
        ex = SerialExecutor()
    elif request.param == "thread":
        ex = ThreadExecutor(n_workers=2)
    else:
        ex = ProcessExecutor(n_workers=2)
    yield ex
    ex.close()


class TestRecoveryContract:
    """Parametrized over all backends: same inputs, same guarantees."""

    def test_plain_map_preserves_order(self, executor):
        assert executor.map(double, list(range(20))) == [2 * i for i in range(20)]

    def test_every_task_crashing_once_is_absorbed(self, executor):
        """crash_p=1.0: each task dies on first submission, succeeds on resubmit."""
        inj = FaultInjector(FaultConfig(crash_p=1.0, seed=0))
        with fault_injection(inj):
            out = executor.map(double, [1, 2, 3, 4])
        assert out == [2, 4, 6, 8]
        assert inj.injected["crash"] == 4  # every task was actually poisoned

    def test_partial_crashes_preserve_order(self, executor):
        inj = FaultInjector(FaultConfig(crash_p=0.5, seed=3))
        with fault_injection(inj):
            out = executor.map(double, list(range(12)))
        assert out == [2 * i for i in range(12)]
        assert 0 < inj.injected["crash"] < 12

    def test_resubmit_budget_exhaustion_raises(self, executor):
        executor.max_resubmits = 2
        with pytest.raises(WorkerCrashError, match="resubmission rounds"):
            executor.map(always_crash, [1, 2, 3])

    def test_no_injector_runs_clean(self, executor):
        assert executor.map(double, [5]) == [10]


class TestProcessPoolHardDeath:
    def test_real_worker_kill_is_detected_and_resubmitted(self, tmp_path):
        """A worker that os._exit()s breaks the pool; the executor rebuilds
        it and resubmits the lost task, which then succeeds."""
        token = str(tmp_path / "died.token")
        with ProcessExecutor(n_workers=1) as ex:
            assert ex.map(die_once, [token]) == ["survived"]
        assert os.path.exists(token)  # the kill really happened

    def test_injected_kill_mode_breaks_and_recovers_pool(self):
        """crash_mode='kill' makes injected crashes hard-exit the worker."""
        inj = FaultInjector(FaultConfig(crash_p=1.0, seed=0, crash_mode="kill"))
        with ProcessExecutor(n_workers=2) as ex, fault_injection(inj):
            assert ex.map(double, [1, 2, 3]) == [2, 4, 6]
        assert inj.injected["crash"] == 3

    def test_thread_backend_never_hard_kills(self):
        """Thread backend downgrades kill-mode faults to soft crashes
        (a hard exit would take down the whole interpreter)."""
        inj = FaultInjector(FaultConfig(crash_p=1.0, seed=0, crash_mode="kill"))
        with ThreadExecutor(n_workers=2) as ex, fault_injection(inj):
            assert ex.map(double, [1, 2]) == [2, 4]
