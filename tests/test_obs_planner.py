"""Tests for the capacity planner (repro.obs.planner).

Covers: asg-sim confidence-interval semantics (cost_ci / compare_cis),
the list-scheduling simulator on synthetic DAGs with closed-form
answers (a chain parallelizes not at all; a perfect binary tree has a
known makespan at every worker count), plan_report's bounds/trials/CI
behavior, knee recommendation, dollar-cost curve shape, plan.json
schema validation, the prediction-vs-measured acceptance gate (a
single-worker ribosome-topology trace must predict an independently
scheduled 4-worker trace's makespan within 30%), the doctor's tracer
self-cost surfacing, and the ``repro obs plan`` CLI.
"""

import json

import numpy as np
import pytest

from repro import obs
from repro.cli import main
from repro.errors import TraceAnalysisError
from repro.machine.costmodel import FleetCostModel, SimulationError
from repro.obs import planner
from repro.obs.tracer import Span, Tracer
from repro.obs.validate import validate_plan_json


def _add_span(tracer, name, start, end, *, cat="solve", attrs=None,
              parent=None, pid=1, tid=1):
    sp = Span(
        name=name,
        cat=cat,
        start=float(start),
        end=float(end),
        attrs=dict(attrs or {}),
        span_id=tracer._new_id(),
        parent_id=parent,
        pid=pid,
        tid=tid,
    )
    tracer.spans.append(sp)
    return sp


def _serial_trace(costs, edges):
    """One-lane trace: node spans tiled back to back inside one cycle.

    Node attrs carry only nid/parent_nid (no Equation-1 attributes), so
    the planner falls back to its gaussian noise model.
    """
    tracer = Tracer()
    total = sum(costs.values())
    cycle = _add_span(tracer, "cycle", 0.0, total, attrs={"cycle": 0})
    t = 0.0
    for nid in sorted(costs):
        _add_span(
            tracer, f"node[{nid}]", t, t + costs[nid],
            attrs={"nid": nid, "parent_nid": edges.get(nid, -1)},
            parent=cycle.span_id,
        )
        t += costs[nid]
    return tracer


# chain 0 <- 1 <- 2 <- 3 (leaf 0 first): no parallelism at all
CHAIN_COSTS = {0: 1.0, 1: 2.0, 2: 1.0, 3: 3.0}
CHAIN_EDGES = {0: 1, 1: 2, 2: 3, 3: -1}

# perfect binary tree, 7 unit-cost nodes: leaves 3..6, mids 1..2, root 0
TREE_COSTS = {nid: 1.0 for nid in range(7)}
TREE_EDGES = {3: 1, 4: 1, 5: 2, 6: 2, 1: 0, 2: 0, 0: -1}


class TestCostCI:
    def test_matches_normal_approximation(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        lo, hi = planner.cost_ci(samples, 95)
        mean = np.mean(samples)
        half = 1.96 * np.std(samples, ddof=1) / np.sqrt(4)
        assert (lo, hi) == pytest.approx((mean - half, mean + half))

    def test_single_sample_zero_width(self):
        assert planner.cost_ci([2.5]) == (2.5, 2.5)

    def test_wider_levels_are_wider(self):
        samples = list(range(10))
        w95 = np.diff(planner.cost_ci(samples, 95))[0]
        w999 = np.diff(planner.cost_ci(samples, 99.9))[0]
        assert w999 > w95

    def test_unsupported_percent_and_empty(self):
        with pytest.raises(ValueError):
            planner.cost_ci([1.0], 90)
        with pytest.raises(ValueError):
            planner.cost_ci([])

    def test_compare_cis(self):
        assert planner.compare_cis((0.0, 1.0), (2.0, 3.0)) == 1
        assert planner.compare_cis((2.0, 3.0), (0.0, 1.0)) == -1
        assert planner.compare_cis((0.0, 2.0), (1.0, 3.0)) == 0


class TestSimulateSchedule:
    def test_chain_has_no_parallelism(self):
        serial = sum(CHAIN_COSTS.values())
        for w in (1, 2, 4, 16):
            sim = planner.simulate_schedule(CHAIN_COSTS, CHAIN_EDGES, w)
            assert sim["makespan_seconds"] == pytest.approx(serial)
        assert planner.simulate_schedule(CHAIN_COSTS, CHAIN_EDGES, 4)[
            "utilization"
        ] == pytest.approx(0.25)

    def test_binary_tree_closed_form(self):
        # 7 unit tasks: w=1 -> 7; w=2 -> leaves in 2 rounds (2), mids
        # together (1), root (1) = 4; w=4 -> level per step = 3
        for w, expect in [(1, 7.0), (2, 4.0), (4, 3.0), (8, 3.0)]:
            sim = planner.simulate_schedule(TREE_COSTS, TREE_EDGES, w)
            assert sim["makespan_seconds"] == pytest.approx(expect), w
        sim4 = planner.simulate_schedule(TREE_COSTS, TREE_EDGES, 4)
        assert sim4["utilization"] == pytest.approx(7.0 / 12.0)

    def test_bracketed_by_critical_path_and_serial(self):
        rng = np.random.default_rng(5)
        costs = {nid: float(rng.uniform(0.5, 2.0)) for nid in range(7)}
        cp = planner.PlannerInput(
            label="x", backend=None, wall_seconds=1.0, n_lanes=1,
            costs=costs, edges=TREE_EDGES,
        ).critical_path_seconds
        serial = sum(costs.values())
        for w in (1, 2, 3, 4, 16):
            m = planner.simulate_schedule(costs, TREE_EDGES, w)["makespan_seconds"]
            assert cp - 1e-12 <= m <= serial + 1e-12

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            planner.simulate_schedule(TREE_COSTS, TREE_EDGES, 0)
        with pytest.raises(TraceAnalysisError):
            planner.simulate_schedule({}, {}, 1)
        with pytest.raises(TraceAnalysisError, match="cycle"):
            planner.simulate_schedule({0: 1.0, 1: 1.0}, {0: 1, 1: 0}, 2)


class TestPlanReport:
    @pytest.fixture
    def tree_trace(self):
        return _serial_trace(TREE_COSTS, TREE_EDGES)

    def test_predictions_within_bounds(self, tree_trace):
        plan = obs.plan_report(tree_trace, workers=[1, 2, 4, 8], seed=0)
        b = plan["bounds"]
        assert b["critical_path_seconds"] == pytest.approx(3.0)
        assert b["serial_seconds"] == pytest.approx(7.0)
        for e in plan["predictions"]:
            assert (
                b["critical_path_seconds"] - 1e-9
                <= e["makespan_seconds"]
                <= b["serial_seconds"] + 1e-9
            )
        assert validate_plan_json(plan) == []

    def test_default_trials_at_least_twenty(self, tree_trace):
        plan = obs.plan_report(tree_trace, workers=[1, 2])
        assert plan["trials"] >= 20

    def test_ci_width_shrinks_with_more_trials(self, tree_trace):
        def width(trials):
            plan = obs.plan_report(
                tree_trace, workers=[2], trials=trials, seed=0
            )
            lo, hi = plan["predictions"][0]["makespan_ci"]
            return hi - lo

        # same gaussian noise model, 16x the trials: ~4x narrower
        assert width(320) < width(5)

    def test_compare_cis_ordering_stable_across_seeds(self, tree_trace):
        for seed in (0, 1, 2, 3):
            plan = obs.plan_report(
                tree_trace, workers=[1, 4], trials=30, seed=seed
            )
            one, four = plan["predictions"]
            assert planner.compare_cis(
                tuple(four["makespan_ci"]), tuple(one["makespan_ci"])
            ) == 1, seed

    def test_recommendation_finds_the_knee(self, tree_trace):
        plan = obs.plan_report(
            tree_trace, workers=[1, 2, 4, 8], trials=30, seed=0, knee=0.1
        )
        rec = plan["recommendation"]
        # beyond 4 workers the tree has no level wider than 4: the 4->8
        # marginal speedup is exactly zero, under any knee threshold
        assert rec["workers"] == 4
        assert rec["marginal_gain"] < 0.1
        assert "wants 4 workers" in rec["statement"]
        assert len(rec["marginal_gains"]) == 3

    def test_chain_recommends_one_worker(self):
        trace = _serial_trace(CHAIN_COSTS, CHAIN_EDGES)
        plan = obs.plan_report(trace, workers=[1, 2, 4], trials=30, seed=0)
        assert plan["recommendation"]["workers"] == 1
        for e in plan["predictions"]:
            assert e["speedup"] == pytest.approx(1.0)

    def test_cost_curve_has_a_minimum(self, tree_trace):
        fleet = FleetCostModel(worker_hour_dollars=0.1, makespan_hour_dollars=50.0)
        plan = obs.plan_report(
            tree_trace, workers=[1, 4, 64], seed=0, fleet_cost=fleet
        )
        costs = {e["workers"]: e["cost_dollars"] for e in plan["predictions"]}
        # 4 workers: shorter run than 1, idle-fleet tax smaller than 64
        assert costs[4] < costs[1]
        assert costs[4] < costs[64]

    def test_self_validation_exact_on_tiled_trace(self, tree_trace):
        # spans tile the cycle exactly, so re-simulating at 1 lane
        # reproduces the measured wall to within float error
        plan = obs.plan_report(tree_trace, workers=[1, 2], seed=0)
        v = plan["validation"][0]
        assert v["kind"] == "self" and v["workers"] == 1
        assert v["rel_error"] < 1e-9 and v["within"]

    def test_bad_arguments(self, tree_trace):
        with pytest.raises(ValueError):
            obs.plan_report(tree_trace, workers=[])
        with pytest.raises(ValueError):
            obs.plan_report(tree_trace, workers=[0, 2])
        with pytest.raises(ValueError):
            obs.plan_report(tree_trace, workers=[1], trials=0)


class TestFleetCostModel:
    def test_pricing_formula(self):
        fleet = FleetCostModel(worker_hour_dollars=1.0, makespan_hour_dollars=10.0)
        # 4 workers for half an hour: 4*0.5*1 + 0.5*10
        assert fleet.run_cost(4, 1800.0) == pytest.approx(7.0)

    def test_rejects_empty_fleet(self):
        with pytest.raises(SimulationError):
            FleetCostModel().run_cost(0, 10.0)


class TestValidatePlanJson:
    @pytest.fixture
    def plan(self):
        return obs.plan_report(
            _serial_trace(TREE_COSTS, TREE_EDGES), workers=[1, 2, 4], seed=0
        )

    def test_accepts_real_plan(self, plan):
        assert validate_plan_json(plan) == []

    def test_rejects_breakage(self, plan):
        bad = json.loads(json.dumps(plan))
        bad["predictions"][0]["makespan_seconds"] = 99.0  # above serial
        assert validate_plan_json(bad)
        bad = json.loads(json.dumps(plan))
        bad["predictions"][0]["workers"] = 3  # non-increasing counts
        assert validate_plan_json(bad)
        bad = json.loads(json.dumps(plan))
        bad["trials"] = 0
        assert validate_plan_json(bad)
        assert validate_plan_json({"plan_version": 2})
        assert validate_plan_json([])


def _ribosome_hierarchy_edges():
    from repro.molecules.ribosome import build_ribo30s

    problem = build_ribo30s(seed=0)
    return {
        n.nid: -1 if n.parent is None else n.parent.nid
        for n in problem.hierarchy.nodes
    }


class TestAcceptanceRibosome:
    """ISSUE acceptance: a 1-worker ribosome trace predicts the 4-worker
    traced makespan within 30%."""

    @pytest.fixture(scope="class")
    def ribo(self):
        edges = _ribosome_hierarchy_edges()
        rng = np.random.default_rng(7)
        costs = {
            nid: float(rng.uniform(0.004, 0.012)) for nid in sorted(edges)
        }
        return costs, edges

    def test_one_worker_trace_predicts_four_worker_makespan(self, ribo):
        costs, edges = ribo
        single = _serial_trace(costs, edges)
        plan = obs.plan_report(single, workers=[1, 2, 4], trials=20, seed=0)

        # Independently synthesize the 4-worker run: greedy earliest-free
        # lane packing in dependency order (not the planner's rank-based
        # event loop) with ±5% per-node cost jitter.
        rng = np.random.default_rng(1)
        jittered = {
            nid: sec * float(rng.uniform(0.95, 1.05))
            for nid, sec in costs.items()
        }
        measured = Tracer()
        cycle = _add_span(measured, "cycle", 0.0, 1.0, attrs={"cycle": 0})
        lanes = [0.0, 0.0, 0.0, 0.0]
        for nid in planner._dependency_order(jittered, edges):
            lane = int(np.argmin(lanes))
            start = lanes[lane]
            lanes[lane] = start + jittered[nid]
            _add_span(
                measured, f"node[{nid}]", start, lanes[lane],
                attrs={"nid": nid, "parent_nid": edges.get(nid, -1)},
                parent=cycle.span_id, pid=1, tid=lane + 1,
            )
        measured.spans[0].end = max(lanes)  # cycle wall = last lane busy

        v = obs.validate_prediction(plan, measured, trace="synthetic-4w")
        assert v["workers"] == 4
        assert v["rel_error"] < 0.30, v
        assert v["within"]
        plan["validation"].append(v)
        assert validate_plan_json(plan) == []

    def test_recommend_names_a_knee_count(self, ribo):
        costs, edges = ribo
        plan = obs.plan_report(
            _serial_trace(costs, edges),
            workers=[1, 2, 4, 8, 16],
            trials=25,
            seed=0,
        )
        rec = plan["recommendation"]
        assert rec["workers"] in (1, 2, 4, 8, 16)
        if rec["knee_found"]:
            # the named count's next step is below the knee or unresolved
            assert (
                rec["marginal_gain"] < rec["knee_threshold"]
                or not rec["marginal_gain_significant"]
            )
            assert "workers; adding more buys" in rec["statement"]
        else:
            # wide hierarchy: every planned step still paid
            assert rec["workers"] == 16
            assert "still scales" in rec["statement"]


class TestOverheadDiscount:
    def test_overhead_shrinks_costs(self):
        trace = _serial_trace(TREE_COSTS, TREE_EDGES)
        trace.overhead_seconds = 0.7  # 10% of the 7s of node work
        inp = obs.planner_input(trace)
        assert inp.overhead_discount < 1.0
        assert inp.serial_seconds < 7.0
        undiscounted = obs.planner_input(trace, discount_overhead=False)
        assert undiscounted.serial_seconds == pytest.approx(7.0)

    def test_doctor_surfaces_self_cost(self):
        trace = _serial_trace(TREE_COSTS, TREE_EDGES)
        trace.overhead_seconds = 0.5
        report = obs.doctor_report(trace)
        assert report["obs_overhead_seconds"] == 0.5
        assert any("tracer self-cost" in v for v in report["verdicts"])


class TestPlannerCLI:
    @pytest.fixture
    def trace_file(self, tmp_path):
        path = tmp_path / "tree.jsonl"
        obs.write_spans_jsonl(_serial_trace(TREE_COSTS, TREE_EDGES), path)
        return str(path)

    def test_plan_command(self, trace_file, tmp_path, capsys):
        out = tmp_path / "plan.json"
        rc = main([
            "obs", "plan", trace_file, "--workers", "1,2,4,8",
            "--trials", "20", "--recommend", "--out", str(out),
        ])
        assert rc == 0
        text = capsys.readouterr().out
        assert "capacity plan" in text
        assert "recommendation: this workload wants 4 workers" in text
        plan = json.loads(out.read_text())
        assert validate_plan_json(plan) == []
        assert plan["recommendation"]["workers"] == 4

    def test_plan_measured_validation(self, trace_file, tmp_path):
        # a second copy of the same serial trace is a measured 1-worker
        # run; the prediction at 1 worker matches it exactly
        rc = main([
            "obs", "plan", trace_file, "--workers", "1,2",
            "--measured", f"1:{trace_file}",
        ])
        assert rc == 0

    def test_plan_drift_gate_fails(self, trace_file, tmp_path):
        # an absurd drift budget of 0 trips on any noise; the tiled
        # synthetic trace is exact, so tighten against a doctored copy
        doctored = Tracer()
        cycle = _add_span(doctored, "cycle", 0.0, 100.0, attrs={"cycle": 0})
        t = 0.0
        for nid in sorted(TREE_COSTS):
            _add_span(
                doctored, f"node[{nid}]", t, t + 1.0,
                attrs={"nid": nid, "parent_nid": TREE_EDGES.get(nid, -1)},
                parent=cycle.span_id,
            )
            t += 1.0
        path = tmp_path / "slow.jsonl"  # wall 100s but only 7s of work
        obs.write_spans_jsonl(doctored, path)
        rc = main(["obs", "plan", str(path), "--workers", "1,2",
                   "--max-drift", "0.3"])
        assert rc == 1

    def test_regress_plan_trace_gate(self, trace_file, tmp_path):
        report = obs.run_regress(plan_trace=trace_file, plan_max_drift=0.3)
        assert report["ok"]
        [check] = report["checks"]
        assert check["metric"].startswith("planner.")
        assert report["environment"]["plan_trace"] == trace_file

    def test_plan_json_validator_cli(self, trace_file, tmp_path, capsys):
        out = tmp_path / "plan.json"
        assert main(["obs", "plan", trace_file, "--workers", "1,2",
                     "--out", str(out)]) == 0
        from repro.obs import validate as vmod

        assert vmod.main([str(out)]) == 0
        assert "valid plan" in capsys.readouterr().out
