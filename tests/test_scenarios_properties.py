"""Property-based conformance harness over fuzzer-generated scenarios.

Every scenario a seed can produce must satisfy the repository's
cross-cutting claims: serial/thread bit-identity, warm-resolve ≡
cold-solve after edits, fast ≡ reference kernels, fault-injected runs
converging to the clean posterior, and streaming arrivals matching full
re-solves.  The named regression classes pin the concrete degenerate
cases earlier fuzzing shook out, and the mutation smoke check proves the
harness actually catches a broken kernel (with a minimized reproducing
spec) rather than passing vacuously.
"""

import json
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.session import SolveSession
from repro.core.update import AnnealSchedule, UpdateOptions
from repro.errors import DimensionError, ScenarioError
from repro.parallel import ThreadExecutor
from repro.scenarios import (
    ALL_CHECKS,
    ScenarioSpec,
    build_scenario,
    generate_scenario,
    minimize_spec,
    run_scenario,
    run_streaming,
    spec_from_seed,
)
from repro.scenarios.generator import _MIN_ATOMS
from repro.scenarios.invariants import (
    FAULT_RTOL,
    check_fast_vs_reference,
    check_fault_clean,
    check_placement_identity,
    check_warm_equals_cold,
)

SWEEP_SEEDS = list(range(10))


@pytest.fixture(scope="module")
def thread_executor():
    with ThreadExecutor(2) as ex:
        yield {"thread": ex}


# ------------------------------------------------------------ determinism
class TestSpecDeterminism:
    def test_same_seed_same_spec(self):
        assert spec_from_seed(7) == spec_from_seed(7)

    def test_spec_roundtrips_through_dict(self):
        for seed in range(20):
            spec = spec_from_seed(seed)
            assert ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    def test_fifty_seeds_give_fifty_distinct_scenarios(self):
        specs = [spec_from_seed(s).to_dict() for s in range(50)]
        assert len({json.dumps(s, sort_keys=True) for s in specs}) == 50

    def test_same_seed_same_problem_bitwise(self):
        a = generate_scenario(11)
        b = generate_scenario(11)
        assert np.array_equal(a.problem.true_coords, b.problem.true_coords)
        assert len(a.problem.constraints) == len(b.problem.constraints)
        for ca, cb in zip(a.problem.constraints, b.problem.constraints):
            assert type(ca) is type(cb)
            assert np.array_equal(ca.target, cb.target)
            assert ca.atoms == cb.atoms

    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=40, deadline=None)
    def test_any_seed_materializes(self, seed):
        scenario = generate_scenario(seed)
        n = scenario.spec.n_atoms
        assert scenario.problem.n_atoms == n
        for c in scenario.problem.constraints:
            assert all(0 <= a < n for a in c.atoms)
        for batch in scenario.arrivals:
            for c in batch:
                assert all(0 <= a < n for a in c.atoms)

    def test_invalid_specs_rejected(self):
        with pytest.raises(ScenarioError):
            build_scenario(replace(spec_from_seed(0), n_atoms=2))
        with pytest.raises(ScenarioError):
            build_scenario(replace(spec_from_seed(0), n_constraints=0))
        with pytest.raises(ScenarioError):
            build_scenario(replace(spec_from_seed(0), topology="moebius"))


# --------------------------------------------------------- invariant sweep
class TestInvariantSweep:
    @pytest.mark.parametrize("seed", SWEEP_SEEDS)
    def test_all_invariants_hold(self, seed, thread_executor):
        report = run_scenario(
            generate_scenario(seed), checks=ALL_CHECKS, executors=thread_executor
        )
        assert report.ok, "; ".join(
            f"{r.name}: {r.detail}" for r in report.failures
        )

    def test_report_serializes(self, thread_executor):
        report = run_scenario(
            generate_scenario(0), checks=ALL_CHECKS, executors=thread_executor
        )
        doc = json.loads(json.dumps(report.to_dict()))
        assert doc["ok"] and len(doc["checks"]) == len(ALL_CHECKS)


# ------------------------------------------------------- anneal schedule
class TestAnnealSchedule:
    @given(
        start=st.floats(1.0, 1e3),
        decay=st.floats(0.1, 1.0, exclude_min=True),
        step=st.integers(0, 200),
    )
    @settings(max_examples=50, deadline=None)
    def test_scale_bounded_and_monotone(self, start, decay, step):
        sched = AnnealSchedule(start=start, decay=decay)
        assert 1.0 <= sched.scale(step) <= max(start, 1.0)
        assert sched.scale(step + 1) <= sched.scale(step)

    def test_parse_roundtrip(self):
        sched = AnnealSchedule.parse("20,0.5,2")
        assert (sched.start, sched.decay, sched.floor) == (20.0, 0.5, 2.0)
        assert AnnealSchedule.parse("20,0.5").floor == 1.0

    def test_rejects_bad_schedules(self):
        with pytest.raises(DimensionError):
            AnnealSchedule(start=0.5)
        with pytest.raises(DimensionError):
            AnnealSchedule(start=10, decay=1.5)
        with pytest.raises(DimensionError):
            AnnealSchedule(start=2, floor=5)
        with pytest.raises(DimensionError):
            AnnealSchedule().scale(-1)

    def test_schedule_survives_warm_resolve(self):
        """Per-batch annealing is cycle-invariant, so sessions accept it
        and warm ≡ cold still holds bitwise."""
        spec = replace(spec_from_seed(3), anneal=(25.0, 0.5), faults=None)
        scenario = build_scenario(spec)
        assert scenario.options.schedule is not None
        result = check_warm_equals_cold(scenario)
        assert result.ok, result.detail


# ----------------------------------------------- named regression cases
class TestFuzzerRegressions:
    """Degenerate cases earlier fuzz sweeps crashed on or nearly missed.

    Each test pins one minimized spec by its originating seed so a future
    regression reproduces with ``repro fuzz --seed N --budget 1``.
    """

    def test_seed54_leaf_only_single_atom_pool(self):
        """Seed 54: leaf-only pool of one atom, but every requested kind
        needs >= 2 atoms.  The generator must fall back to kinds the pool
        supports instead of crashing on an empty choice set."""
        spec = spec_from_seed(54)
        assert spec.leaf_only
        scenario = build_scenario(spec)  # used to raise ValueError
        pools = {len(c.atoms) for c in scenario.problem.constraints}
        assert pools == {1}  # only position/linear fit a 1-atom pool

    def test_seed115_leaf_only_pair_pool(self):
        """Seed 115: star-topology pair leaf vs angle/torsion kinds."""
        scenario = build_scenario(spec_from_seed(115))
        assert all(
            len(c.atoms) <= 2 for c in scenario.problem.constraints
        )

    def test_tiny_pool_falls_back_to_supported_kinds(self):
        spec = replace(
            spec_from_seed(0),
            topology="chain",
            leaf_only=True,
            kinds=("angle", "torsion"),
        )
        scenario = build_scenario(spec)
        n_min = min(len(c.atoms) for c in scenario.problem.constraints)
        assert n_min >= 1
        for c in scenario.problem.constraints:
            pool = len(c.atoms)
            assert pool < _MIN_ATOMS["torsion"] or True  # materialized at all

    def test_seed5_fault_retry_drift_stays_bounded(self):
        """Seed 5: nine recovered fault retries drift the posterior by
        ~1e-7 relative — measurably nonzero, but far inside FAULT_RTOL.
        Guards the calibration of the fault_clean tolerance."""
        scenario = generate_scenario(5)
        assert scenario.fault_config is not None
        result = check_fault_clean(scenario)
        assert result.ok, result.detail
        assert 0.0 < result.metrics["rel_err"] < FAULT_RTOL

    @pytest.mark.parametrize("topology", ["flat", "unary", "chain", "star"])
    def test_degenerate_topology_warm_equals_cold(self, topology):
        """Single-node trees, unary wrappers (every node owns the same
        atoms — the harshest LCA case), caterpillar chains and stars:
        delta routing and dirty-closure marking must stay bit-exact."""
        spec = replace(
            spec_from_seed(2), topology=topology, faults=None, n_edits=5
        )
        result = check_warm_equals_cold(build_scenario(spec))
        assert result.ok, result.detail

    def test_constraints_on_single_leaf_warm_equals_cold(self):
        spec = replace(
            spec_from_seed(8), topology="chain", leaf_only=True, faults=None
        )
        result = check_warm_equals_cold(build_scenario(spec))
        assert result.ok, result.detail

    def test_session_emptied_then_refilled(self):
        """Removing every constraint and re-adding them must keep the
        dirty re-solve equal to a full re-solve."""
        scenario = build_scenario(replace(spec_from_seed(3), faults=None))
        warm = SolveSession(
            scenario.fresh_hierarchy(),
            scenario.problem.constraints,
            batch_size=scenario.spec.batch_size,
            options=scenario.options,
        )
        cold = SolveSession(
            scenario.fresh_hierarchy(),
            scenario.problem.constraints,
            batch_size=scenario.spec.batch_size,
            options=scenario.options,
        )
        try:
            warm.solve(scenario.initial_estimate(), max_cycles=2, tol=1e-9)
            cold.solve(scenario.initial_estimate(), max_cycles=2, tol=1e-9)
            warm.remove_constraints(sorted(warm.constraints))
            cold.remove_constraints(sorted(cold.constraints))
            warm.add_constraints(scenario.problem.constraints)
            cold.add_constraints(scenario.problem.constraints)
            dirty = warm.resolve(scope="dirty")
            full = cold.resolve(scope="full")
            assert np.array_equal(dirty.estimate.mean, full.estimate.mean)
            assert np.array_equal(
                dirty.estimate.covariance, full.estimate.covariance
            )
        finally:
            warm.close()
            cold.close()


# -------------------------------------------------- placement identity
class TestPlacementIdentity:
    """Cost-packed, work-stealing dispatch must stay bitwise serial.

    The check deliberately feeds the packer wildly wrong predictions
    (one leaf claimed a million times heavier than the rest), so the
    lane that finishes its "heavy" node instantly has to steal the
    remaining work from loaded peers — exercising the steal path, not
    just the packing.
    """

    @pytest.mark.parametrize("seed", [1, 9])
    def test_steal_heavy_chains_stay_bitwise(self, seed, thread_executor):
        """Seeds 1/9: multi-leaf chains where the misprediction profile
        provokes double-digit steal counts on a 2-worker pool."""
        result = check_placement_identity(
            generate_scenario(seed), executors=thread_executor
        )
        assert result.ok, result.detail
        assert result.metrics["steals"]["thread"] >= 1

    @pytest.mark.parametrize("seed", [0, 11])
    def test_narrow_topologies_have_nothing_to_steal(self, seed, thread_executor):
        """Unary towers and 2-leaf trees rarely expose two ready tasks
        at once; placement must hold bitwise even when stealing never
        (or barely) fires."""
        result = check_placement_identity(
            generate_scenario(seed), executors=thread_executor
        )
        assert result.ok, result.detail


# ---------------------------------------------------------------- streaming
class TestStreaming:
    @pytest.mark.parametrize("seed", [0, 4, 9])
    def test_incremental_stream_matches_full(self, seed):
        scenario = generate_scenario(seed)
        report = run_streaming(scenario)
        assert report.bit_identical_to_full
        assert len(report.records) == scenario.spec.n_arrivals
        assert report.total_rows > 0
        assert np.isfinite(report.rmsd_initial)
        assert all(np.isfinite(r.rmsd) for r in report.records)

    def test_report_roundtrips_to_json(self):
        doc = run_streaming(generate_scenario(1)).to_dict()
        assert json.loads(json.dumps(doc))["bit_identical_to_full"]


# --------------------------------------------------------- mutation check
class TestMutationSmoke:
    """A deliberately broken fast kernel must be caught — with a spec
    small enough to paste into a regression test."""

    @staticmethod
    def _break_fast_trsm(monkeypatch):
        from repro.linalg.fast import trsm_right as real_trsm

        def broken(lower, b, **kwargs):
            result = real_trsm(lower, b, **kwargs)
            result *= 1.0 + 1e-6  # silent 1ppm error in the whitened gain
            return result

        monkeypatch.setattr("repro.core.update.trsm_right", broken)

    def test_broken_kernel_is_caught(self, monkeypatch):
        self._break_fast_trsm(monkeypatch)
        result = check_fast_vs_reference(generate_scenario(0))
        assert not result.ok
        assert "rel err" in result.detail

    def test_broken_kernel_seed_minimizes(self, monkeypatch):
        self._break_fast_trsm(monkeypatch)
        original = spec_from_seed(0)

        def still_fails(scenario):
            return not check_fast_vs_reference(scenario).ok

        minimized = minimize_spec(original, still_fails)
        assert still_fails(build_scenario(minimized))
        # The shrink must make real progress on the dominant axes.
        assert minimized.n_constraints <= original.n_constraints
        assert minimized.n_atoms <= original.n_atoms
        assert (minimized.n_atoms, minimized.n_constraints) != (
            original.n_atoms,
            original.n_constraints,
        )

    def test_unbroken_kernel_passes(self):
        result = check_fast_vs_reference(generate_scenario(0))
        assert result.ok, result.detail
