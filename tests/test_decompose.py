"""Tests for automatic decomposition (RCB and graph partitioning)."""

import numpy as np
import pytest

from repro.constraints import DistanceConstraint
from repro.core.decompose import (
    constraint_graph,
    graph_partition_hierarchy,
    recursive_coordinate_bisection,
)
from repro.core.hierarchy import assign_constraints
from repro.errors import HierarchyError


@pytest.fixture
def two_clusters(rng):
    """Two well-separated atom clusters, densely constrained internally."""
    a = rng.normal(0, 1, (8, 3))
    b = rng.normal(0, 1, (8, 3)) + np.array([100.0, 0, 0])
    coords = np.vstack([a, b])
    cons = []
    for base in (0, 8):
        for i in range(8):
            for j in range(i + 1, 8):
                d = float(np.linalg.norm(coords[base + i] - coords[base + j]))
                cons.append(DistanceConstraint(base + i, base + j, max(d, 0.1), 0.1))
    # one weak cross-link
    d = float(np.linalg.norm(coords[0] - coords[8]))
    cons.append(DistanceConstraint(0, 8, d, 1.0))
    return coords, cons


class TestRCB:
    def test_partitions_all_atoms(self, two_clusters):
        coords, _ = two_clusters
        h = recursive_coordinate_bisection(coords, max_leaf_atoms=4)
        assert np.array_equal(np.sort(h.root.atoms), np.arange(16))

    def test_leaf_size_bound(self, two_clusters):
        coords, _ = two_clusters
        h = recursive_coordinate_bisection(coords, max_leaf_atoms=4)
        assert all(l.n_atoms <= 4 for l in h.leaves())

    def test_single_leaf_when_small(self, rng):
        coords = rng.normal(size=(3, 3))
        h = recursive_coordinate_bisection(coords, max_leaf_atoms=10)
        assert len(h) == 1

    def test_splits_longest_axis_first(self, two_clusters):
        """The 100-Å x gap must be the first cut: the two clusters land in
        different root children."""
        coords, _ = two_clusters
        h = recursive_coordinate_bisection(coords, max_leaf_atoms=8)
        left, right = h.root.children
        assert set(left.atoms) == set(range(8)) or set(left.atoms) == set(range(8, 16))

    def test_invalid_inputs(self, rng):
        with pytest.raises(HierarchyError):
            recursive_coordinate_bisection(rng.normal(size=(4, 2)))
        with pytest.raises(HierarchyError):
            recursive_coordinate_bisection(rng.normal(size=(4, 3)), max_leaf_atoms=0)

    def test_valid_hierarchy_invariants(self, two_clusters):
        coords, cons = two_clusters
        h = recursive_coordinate_bisection(coords, max_leaf_atoms=4)
        h.validate()
        assign_constraints(h, cons)  # must not raise


class TestConstraintGraph:
    def test_pairwise_edges(self):
        g = constraint_graph(4, [DistanceConstraint(0, 1, 1.0, 0.1)])
        assert g.has_edge(0, 1)
        assert g[0][1]["weight"] == 1.0

    def test_duplicate_constraints_accumulate_weight(self):
        cons = [DistanceConstraint(0, 1, 1.0, 0.1)] * 3
        g = constraint_graph(2, cons)
        assert g[0][1]["weight"] == 3.0

    def test_wide_constraints_downweighted(self):
        from repro.constraints import PositionConstraint, AngleConstraint

        g = constraint_graph(3, [AngleConstraint(0, 1, 2, 1.0, 0.1)])
        # 3-atom clique, each edge weight 1/2
        assert g[0][1]["weight"] == pytest.approx(0.5)
        assert g[0][2]["weight"] == pytest.approx(0.5)

    def test_single_atom_constraints_add_no_edges(self):
        from repro.constraints import PositionConstraint

        g = constraint_graph(2, [PositionConstraint(0, np.zeros(3), 1.0)])
        assert g.number_of_edges() == 0

    def test_isolated_atoms_present(self):
        g = constraint_graph(5, [])
        assert g.number_of_nodes() == 5


class TestGraphPartition:
    @pytest.mark.parametrize("method", ["kl", "spectral"])
    def test_separates_clusters(self, two_clusters, method):
        coords, cons = two_clusters
        h = graph_partition_hierarchy(16, cons, max_leaf_atoms=8, method=method)
        assign_constraints(h, cons)
        # Only the single cross-link (1 row) may sit above the leaves'
        # cluster level; the dense intra-cluster constraints must not.
        top = h.root.n_constraint_rows
        assert top <= 2

    @pytest.mark.parametrize("method", ["kl", "spectral"])
    def test_covers_all_atoms(self, two_clusters, method):
        coords, cons = two_clusters
        h = graph_partition_hierarchy(16, cons, max_leaf_atoms=4, method=method)
        assert np.array_equal(np.sort(h.root.atoms), np.arange(16))
        h.validate()

    def test_unknown_method(self, two_clusters):
        _, cons = two_clusters
        with pytest.raises(HierarchyError, match="unknown"):
            graph_partition_hierarchy(16, cons, method="metis")

    def test_disconnected_graph_free_cut(self, rng):
        """Two components with no cross edges must split without a cut."""
        cons = [DistanceConstraint(0, 1, 1.0, 0.1), DistanceConstraint(2, 3, 1.0, 0.1)]
        h = graph_partition_hierarchy(4, cons, max_leaf_atoms=2, method="kl")
        assign_constraints(h, cons)
        assert h.root.n_constraint_rows == 0

    def test_deterministic_with_seed(self, two_clusters):
        _, cons = two_clusters
        h1 = graph_partition_hierarchy(16, cons, max_leaf_atoms=4, method="kl", seed=7)
        h2 = graph_partition_hierarchy(16, cons, max_leaf_atoms=4, method="kl", seed=7)
        assert [tuple(l.atoms) for l in h1.leaves()] == [tuple(l.atoms) for l in h2.leaves()]

    def test_beats_rcb_on_interleaved_geometry(self, rng):
        """Graph partitioning must capture more constraints at leaves than
        RCB when spatial position is misleading (interleaved chains)."""
        # Two chains whose atoms alternate in space along x.
        n = 16
        coords = np.zeros((n, 3))
        coords[:, 0] = np.arange(n)
        chain_a = list(range(0, n, 2))
        chain_b = list(range(1, n, 2))
        cons = []
        for chain in (chain_a, chain_b):
            for i in range(len(chain)):
                for j in range(i + 1, len(chain)):
                    d = abs(chain[i] - chain[j]) or 1
                    cons.append(DistanceConstraint(chain[i], chain[j], float(d), 0.1))
        h_rcb = recursive_coordinate_bisection(coords, max_leaf_atoms=8)
        assign_constraints(h_rcb, cons)
        h_gp = graph_partition_hierarchy(n, cons, max_leaf_atoms=8, method="kl", seed=0)
        assign_constraints(h_gp, cons)
        assert h_gp.leaf_constraint_fraction() > h_rcb.leaf_constraint_fraction()
