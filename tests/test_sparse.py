"""Tests for repro.linalg.sparse (CSR matrix)."""

import numpy as np
import pytest

from repro.errors import DimensionError
from repro.linalg.counters import OpCategory, recording
from repro.linalg.sparse import CSRMatrix


def random_sparse(rng, shape, density=0.2):
    dense = rng.normal(size=shape) * (rng.random(shape) < density)
    return dense


class TestConstruction:
    def test_from_dense_roundtrip(self, rng):
        dense = random_sparse(rng, (6, 9))
        csr = CSRMatrix.from_dense(dense)
        assert np.allclose(csr.to_dense(), dense)

    def test_from_coo_roundtrip(self):
        rows = np.array([0, 2, 1])
        cols = np.array([1, 0, 2])
        vals = np.array([5.0, -1.0, 2.0])
        csr = CSRMatrix.from_coo(rows, cols, vals, (3, 3))
        dense = np.zeros((3, 3))
        dense[rows, cols] = vals
        assert np.allclose(csr.to_dense(), dense)

    def test_duplicate_triplets_sum(self):
        csr = CSRMatrix.from_coo(
            np.array([0, 0]), np.array([1, 1]), np.array([2.0, 3.0]), (1, 2)
        )
        assert csr.nnz == 1
        assert csr.to_dense()[0, 1] == 5.0

    def test_empty_matrix(self):
        csr = CSRMatrix.from_coo(np.array([]), np.array([]), np.array([]), (3, 4))
        assert csr.nnz == 0
        assert np.allclose(csr.to_dense(), np.zeros((3, 4)))

    def test_row_out_of_range(self):
        with pytest.raises(DimensionError, match="row index"):
            CSRMatrix.from_coo(np.array([3]), np.array([0]), np.array([1.0]), (3, 3))

    def test_col_out_of_range(self):
        with pytest.raises(DimensionError, match="column index"):
            CSRMatrix.from_coo(np.array([0]), np.array([5]), np.array([1.0]), (3, 3))

    def test_mismatched_triplets(self):
        with pytest.raises(DimensionError, match="identical shapes"):
            CSRMatrix.from_coo(np.array([0]), np.array([0, 1]), np.array([1.0]), (2, 2))

    def test_from_dense_tolerance(self):
        dense = np.array([[1e-12, 1.0]])
        csr = CSRMatrix.from_dense(dense, tol=1e-9)
        assert csr.nnz == 1

    def test_invalid_indptr_rejected(self):
        with pytest.raises(DimensionError):
            CSRMatrix(
                np.array([1.0]),
                np.array([0]),
                np.array([0, 2]),  # ends beyond nnz
                (1, 1),
            )


class TestProducts:
    def test_matmul_dense_matches_numpy(self, rng):
        dense = random_sparse(rng, (5, 8))
        b = rng.normal(size=(8, 3))
        csr = CSRMatrix.from_dense(dense)
        assert np.allclose(csr.matmul_dense(b), dense @ b)

    def test_rmatmul_dense_matches_numpy(self, rng):
        dense = random_sparse(rng, (5, 8))
        a = rng.normal(size=(6, 8))
        csr = CSRMatrix.from_dense(dense)
        assert np.allclose(csr.rmatmul_dense(a), a @ dense.T)

    def test_matvec_matches_numpy(self, rng):
        dense = random_sparse(rng, (7, 4))
        x = rng.normal(size=4)
        csr = CSRMatrix.from_dense(dense)
        assert np.allclose(csr.matvec(x), dense @ x)

    def test_matmul_dense_vector_dispatches_to_matvec(self, rng):
        dense = random_sparse(rng, (3, 4))
        x = rng.normal(size=4)
        csr = CSRMatrix.from_dense(dense)
        assert np.allclose(csr.matmul_dense(x), dense @ x)

    def test_dimension_mismatch(self, rng):
        csr = CSRMatrix.from_dense(np.eye(3))
        with pytest.raises(DimensionError):
            csr.matmul_dense(np.zeros((4, 2)))
        with pytest.raises(DimensionError):
            csr.rmatmul_dense(np.zeros((2, 4)))
        with pytest.raises(DimensionError):
            csr.matvec(np.zeros(4))

    def test_events_recorded(self, rng):
        dense = random_sparse(rng, (4, 6))
        csr = CSRMatrix.from_dense(dense)
        with recording() as rec:
            csr.matmul_dense(rng.normal(size=(6, 2)))
            csr.rmatmul_dense(rng.normal(size=(3, 6)))
            csr.matvec(rng.normal(size=6))
        cats = [e.category for e in rec.events]
        assert cats == [OpCategory.DENSE_SPARSE, OpCategory.DENSE_SPARSE, OpCategory.MATVEC]
        assert rec.events[0].flops == 2.0 * csr.nnz * 2

    def test_zero_row_handled(self):
        dense = np.array([[0.0, 0.0], [1.0, 0.0]])
        csr = CSRMatrix.from_dense(dense)
        out = csr.matmul_dense(np.eye(2))
        assert np.allclose(out, dense)


class TestUtilities:
    def test_column_support(self):
        dense = np.array([[0.0, 1.0, 0.0], [0.0, 2.0, 3.0]])
        csr = CSRMatrix.from_dense(dense)
        assert np.array_equal(csr.column_support(), [1, 2])

    def test_row_nonzero_columns(self):
        dense = np.array([[0.0, 1.0, 2.0], [0.0, 0.0, 0.0]])
        csr = CSRMatrix.from_dense(dense)
        assert np.array_equal(csr.row_nonzero_columns(0), [1, 2])
        assert csr.row_nonzero_columns(1).size == 0

    def test_restrict_columns(self, rng):
        dense = np.zeros((3, 10))
        dense[:, [2, 5, 7]] = rng.normal(size=(3, 3))
        csr = CSRMatrix.from_dense(dense)
        sub = csr.restrict_columns(np.array([2, 5, 7]))
        assert sub.shape == (3, 3)
        assert np.allclose(sub.to_dense(), dense[:, [2, 5, 7]])

    def test_restrict_columns_rejects_outside(self):
        csr = CSRMatrix.from_dense(np.array([[1.0, 2.0]]))
        with pytest.raises(DimensionError, match="outside"):
            csr.restrict_columns(np.array([0]))

    def test_vstack(self, rng):
        a = random_sparse(rng, (2, 5))
        b = random_sparse(rng, (3, 5))
        stacked = CSRMatrix.from_dense(a).vstack(CSRMatrix.from_dense(b))
        assert np.allclose(stacked.to_dense(), np.vstack([a, b]))

    def test_vstack_mismatch(self):
        a = CSRMatrix.from_dense(np.eye(2))
        b = CSRMatrix.from_dense(np.eye(3))
        with pytest.raises(DimensionError, match="equal column counts"):
            a.vstack(b)

    def test_transpose_dense(self, rng):
        dense = random_sparse(rng, (4, 6))
        csr = CSRMatrix.from_dense(dense)
        assert np.allclose(csr.transpose_dense(), dense.T)
