"""Tests for the post-hoc trace analytics and regression-gate layer.

Covers: the spans-JSONL / Chrome-trace loaders (exact round-trip, id
preservation, error reporting), spans-JSONL schema validation (and its
CLI), critical-path extraction on hand-built traces with known answers,
per-lane utilization and imbalance attribution, Equation-1 drift
verdicts, the doctor's cross-backend determinism guarantee (same DAG
from serial/thread/process traces of the same problem, warm ``resolve``
passes included), the noise-aware regression checks, and the ``repro
obs`` CLI family.
"""

import json

import numpy as np
import pytest

from repro import obs
from repro.cli import main
from repro.core.hierarchy import assign_constraints
from repro.core.workmodel import WorkModel, analytic_work_model
from repro.errors import TraceAnalysisError
from repro.obs import analysis, regress
from repro.obs.tracer import Span, Tracer
from repro.obs.validate import spans_jsonl_stats, validate_spans_jsonl
from repro.parallel import (
    ParallelHierarchicalSolver,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
)

EXECUTORS = {
    "serial": SerialExecutor,
    "thread": lambda: ThreadExecutor(2),
    "process": lambda: ProcessExecutor(2),
}


@pytest.fixture
def assigned_problem(two_group_problem):
    coords, constraints, hierarchy, estimate = two_group_problem
    assign_constraints(hierarchy, constraints)
    return hierarchy, estimate


def _traced_cycle(hierarchy, estimate, backend):
    tracer = obs.Tracer()
    with EXECUTORS[backend]() as ex, obs.tracing(tracer):
        ParallelHierarchicalSolver(
            hierarchy, batch_size=4, executor=ex
        ).run_cycle(estimate)
    return tracer


def _add_span(tracer, name, start, end, *, cat="solve", attrs=None,
              parent=None, pid=1, tid=1):
    sp = Span(
        name=name,
        cat=cat,
        start=float(start),
        end=float(end),
        attrs=dict(attrs or {}),
        span_id=tracer._new_id(),
        parent_id=parent,
        pid=pid,
        tid=tid,
    )
    tracer.spans.append(sp)
    return sp


def _node_attrs(nid, parent_nid, state_dim=12, rows=4, batch=4):
    return {
        "nid": nid,
        "parent_nid": parent_nid,
        "state_dim": state_dim,
        "rows": rows,
        "batch_size": batch,
    }


@pytest.fixture
def synthetic_tracer():
    """cycle 0..10 with a 3-node tree: leaves 0 (3s) and 1 (4s) under root 2 (2s).

    Leaf 1 runs on a second lane.  Critical path = node1 + node2 = 6s,
    serial work = 9s.
    """
    tracer = Tracer()
    cycle = _add_span(tracer, "cycle", 0.0, 10.0, attrs={"cycle": 0, "solver": "test"})
    _add_span(tracer, "node[0]", 0.0, 3.0, attrs=_node_attrs(0, 2),
              parent=cycle.span_id)
    _add_span(tracer, "node[1]", 0.0, 4.0, attrs=_node_attrs(1, 2),
              parent=cycle.span_id, pid=2, tid=7)
    _add_span(tracer, "node[2]", 4.0, 6.0, attrs=_node_attrs(2, -1),
              parent=cycle.span_id)
    return tracer


class TestLoaders:
    def test_spans_jsonl_round_trips_exactly(self, assigned_problem, tmp_path):
        hierarchy, estimate = assigned_problem
        tracer = _traced_cycle(hierarchy, estimate, "serial")
        first = tmp_path / "first.jsonl"
        second = tmp_path / "second.jsonl"
        obs.write_spans_jsonl(tracer, first)
        loaded = obs.read_spans_jsonl(first)
        obs.write_spans_jsonl(loaded, second)
        assert first.read_bytes() == second.read_bytes()
        assert {sp.span_id for sp in loaded.spans} == {
            sp.span_id for sp in tracer.spans
        }
        assert len(loaded.instants) == len(tracer.instants)

    def test_loaded_tracer_id_allocator_advances(self, tmp_path):
        tracer = Tracer()
        _add_span(tracer, "a", 0.0, 1.0)
        path = tmp_path / "t.jsonl"
        obs.write_spans_jsonl(tracer, path)
        loaded = obs.read_spans_jsonl(path)
        taken = {sp.span_id for sp in loaded.spans}
        assert loaded._new_id() not in taken

    def test_load_trace_dispatches_on_suffix(self, synthetic_tracer, tmp_path):
        jsonl = tmp_path / "t.jsonl"
        chrome = tmp_path / "t.json"
        obs.write_spans_jsonl(synthetic_tracer, jsonl)
        obs.write_chrome_trace(synthetic_tracer, chrome)
        for path in (jsonl, chrome):
            loaded = obs.load_trace(path)
            assert sorted(sp.name for sp in loaded.spans) == [
                "cycle", "node[0]", "node[1]", "node[2]",
            ]

    def test_chrome_round_trip_recovers_lane_nesting(self, synthetic_tracer, tmp_path):
        path = tmp_path / "t.json"
        obs.write_chrome_trace(synthetic_tracer, path)
        loaded = obs.read_chrome_trace(path)
        by_name = {sp.name: sp for sp in loaded.spans}
        # same-lane children keep their parent; timestamps survive to 1 us
        cycle = by_name["cycle"]
        assert by_name["node[0]"].parent_id == cycle.span_id
        assert by_name["node[0]"].duration == pytest.approx(3.0, abs=1e-5)
        # the cross-lane child comes back as a root of its own lane
        assert by_name["node[1]"].parent_id is None
        assert (by_name["node[1]"].pid, by_name["node[1]"].tid) == (2, 7)

    def test_bad_jsonl_raises_with_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "span"\n')
        with pytest.raises(ValueError, match="bad.jsonl:1"):
            obs.read_spans_jsonl(path)
        path.write_text('{"type": "mystery", "name": "x"}\n')
        with pytest.raises(ValueError, match="unknown record type"):
            obs.read_spans_jsonl(path)

    def test_unbalanced_chrome_trace_rejected(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(json.dumps({"traceEvents": [
            {"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 1},
        ]}))
        with pytest.raises(ValueError, match="unclosed"):
            obs.read_chrome_trace(path)


class TestSpansValidation:
    def _rows(self, tracer):
        return [
            {
                "type": "span", "name": sp.name, "cat": sp.cat,
                "start": sp.start, "end": sp.end, "dur": sp.duration,
                "span_id": sp.span_id, "parent_id": sp.parent_id,
                "pid": sp.pid, "tid": sp.tid, "attrs": dict(sp.attrs),
            }
            for sp in sorted(tracer.spans, key=lambda s: s.start)
        ]

    def test_valid_rows_pass(self, synthetic_tracer):
        rows = self._rows(synthetic_tracer)
        assert validate_spans_jsonl(rows) == []
        stats = spans_jsonl_stats(rows)
        assert stats == {"lanes": 2, "spans": 4, "max_depth": 2}

    def test_duplicate_span_id(self, synthetic_tracer):
        rows = self._rows(synthetic_tracer)
        rows[1]["span_id"] = rows[0]["span_id"]
        assert any("duplicate span_id" in p for p in validate_spans_jsonl(rows))

    def test_end_before_start(self, synthetic_tracer):
        rows = self._rows(synthetic_tracer)
        rows[-1]["end"] = rows[-1]["start"] - 1.0
        problems = validate_spans_jsonl(rows)
        assert any("ends" in p and "before it starts" in p for p in problems)

    def test_dangling_parent(self, synthetic_tracer):
        rows = self._rows(synthetic_tracer)
        rows[1]["parent_id"] = 99999
        assert any("matches no span" in p for p in validate_spans_jsonl(rows))

    def test_unsorted_rows(self, synthetic_tracer):
        rows = self._rows(synthetic_tracer)
        rows.reverse()
        assert any("not sorted" in p for p in validate_spans_jsonl(rows))

    def test_partial_overlap_in_lane(self):
        tracer = Tracer()
        _add_span(tracer, "a", 0.0, 5.0)
        _add_span(tracer, "b", 3.0, 8.0)  # overlaps a, not nested
        problems = validate_spans_jsonl(self._rows(tracer))
        assert any("partially overlaps" in p for p in problems)

    def test_wavefront_overlap_exempt(self):
        tracer = Tracer()
        _add_span(tracer, "wavefront[0]", 0.0, 5.0)
        _add_span(tracer, "wavefront[1]", 3.0, 8.0)
        assert validate_spans_jsonl(self._rows(tracer)) == []

    def test_nonscalar_attr_rejected_but_shape_lists_ok(self, synthetic_tracer):
        rows = self._rows(synthetic_tracer)
        rows[0]["attrs"]["shape"] = [4, 4]
        assert validate_spans_jsonl(rows) == []
        rows[0]["attrs"]["bad"] = {"nested": 1}
        assert any("JSON scalar" in p for p in validate_spans_jsonl(rows))

    def test_validate_cli_on_jsonl(self, assigned_problem, tmp_path, capsys):
        from repro.obs.validate import main as validate_main

        hierarchy, estimate = assigned_problem
        path = tmp_path / "t.jsonl"
        obs.write_spans_jsonl(_traced_cycle(hierarchy, estimate, "serial"), path)
        rc = validate_main([str(path), "--expect-name", "node", "--require-depth", "3"])
        assert rc == 0
        assert "valid:" in capsys.readouterr().out
        assert validate_main([str(path), "--expect-name", "no-such-span"]) == 1

    def test_validate_cli_rejects_corrupt_jsonl(self, tmp_path, capsys):
        from repro.obs.validate import main as validate_main

        path = tmp_path / "bad.jsonl"
        rows = [
            {"type": "span", "name": "a", "cat": "solve", "start": 0.0,
             "end": -1.0, "span_id": 1, "parent_id": None, "pid": 1, "tid": 1,
             "attrs": {}},
        ]
        path.write_text("\n".join(json.dumps(r) for r in rows) + "\n")
        assert validate_main([str(path)]) == 1
        assert "INVALID" in capsys.readouterr().err


class TestCriticalPath:
    def test_known_chain(self, synthetic_tracer):
        passes = analysis.solve_passes(synthetic_tracer)
        assert len(passes) == 1
        edges = analysis.dag_edges(passes)
        assert edges == {0: 2, 1: 2, 2: -1}
        cp = analysis.critical_path(passes[0], edges)
        assert [link["nid"] for link in cp["chain"]] == [2, 1]
        assert cp["critical_path_seconds"] == pytest.approx(6.0)
        assert cp["serial_seconds"] == pytest.approx(9.0)
        assert cp["perfect_speedup"] == pytest.approx(1.5)
        assert cp["wall_seconds"] == pytest.approx(10.0)
        assert cp["achieved_speedup"] == pytest.approx(0.9)

    def test_hierarchy_and_attrs_agree(self, assigned_problem, tmp_path):
        hierarchy, estimate = assigned_problem
        tracer = _traced_cycle(hierarchy, estimate, "serial")
        passes = analysis.solve_passes(tracer)
        assert analysis.dag_edges(passes) == analysis.dag_edges(passes, hierarchy)

    def test_missing_parent_nid_needs_hierarchy(self, assigned_problem):
        hierarchy, _ = assigned_problem
        tracer = Tracer()
        cycle = _add_span(tracer, "cycle", 0.0, 2.0, attrs={"cycle": 0})
        _add_span(tracer, "node[0]", 0.0, 1.0, attrs={"nid": 0},
                  parent=cycle.span_id)
        passes = analysis.solve_passes(tracer)
        with pytest.raises(TraceAnalysisError, match="parent_nid"):
            analysis.dag_edges(passes)
        assert analysis.dag_edges(passes, hierarchy)  # hierarchy rescues it

    def test_no_cycles_raises(self):
        tracer = Tracer()
        _add_span(tracer, "solve", 0.0, 1.0)
        with pytest.raises(TraceAnalysisError, match="cycle"):
            analysis.solve_passes(tracer)

    def test_node_restarts_keep_completed_attempt(self, synthetic_tracer):
        # a crashed-and-restarted node records two spans with one nid;
        # the longer (completed) attempt wins
        cycle = synthetic_tracer.spans[0]
        _add_span(synthetic_tracer, "node[0]", 6.0, 6.2,
                  attrs=_node_attrs(0, 2), parent=cycle.span_id)
        passes = analysis.solve_passes(synthetic_tracer)
        assert passes[0].nodes[0].seconds == pytest.approx(3.0)


class TestUtilization:
    def test_lane_split_and_imbalance(self, synthetic_tracer):
        p = analysis.solve_passes(synthetic_tracer)[0]
        util = analysis.worker_utilization(p)
        assert util["n_lanes"] == 2
        by_lane = {(ln["pid"], ln["tid"]): ln for ln in util["lanes"]}
        main_lane = by_lane[(1, 1)]
        assert main_lane["busy_seconds"] == pytest.approx(5.0)  # 3 + 2
        assert main_lane["utilization"] == pytest.approx(0.5)
        worker = by_lane[(2, 7)]
        assert worker["busy_seconds"] == pytest.approx(4.0)
        # imbalance = max busy / mean busy = 5 / 4.5
        assert util["imbalance"] == pytest.approx(5.0 / 4.5)
        # the main lane idles 4..4 gap between node0 and node2 (1s) and a 4s tail
        gaps = {(g["after_nid"], g["before_nid"]): g["seconds"]
                for g in main_lane["longest_gaps"]}
        assert gaps[(0, 2)] == pytest.approx(1.0)
        assert gaps[(2, None)] == pytest.approx(4.0)


class TestEq1Drift:
    def _pass_for(self, model, scale=2.0, distort=None):
        tracer = Tracer()
        cycle = _add_span(tracer, "cycle", 0.0, 100.0, attrs={"cycle": 0})
        t = 0.0
        for nid, (n, rows, m) in enumerate(
            [(6, 3, 3), (12, 6, 4), (24, 9, 4), (48, 12, 4), (24, 5, 4)]
        ):
            dur = scale * model.node_work(n, rows, m)
            if distort is not None:
                dur = distort(nid, dur)
            _add_span(tracer, f"node[{nid}]", t, t + dur,
                      attrs=_node_attrs(nid if nid else 0, -1 if nid == 0 else 0,
                                        state_dim=n, rows=rows, batch=m),
                      parent=cycle.span_id)
            t += dur
        return analysis.solve_passes(tracer)[0]

    def test_exact_model_is_calibrated(self):
        model = analytic_work_model()
        report = analysis.eq1_drift(self._pass_for(model), model)
        assert report["verdict"] == "calibrated"
        assert report["scale"] == pytest.approx(2.0)
        assert report["r2"] == pytest.approx(1.0)
        assert report["median_abs_rel"] == pytest.approx(0.0, abs=1e-12)
        assert {r["nid"] for r in report["residuals"]} == {0, 1, 2, 3, 4}

    def test_distorted_measurements_read_stale(self):
        model = analytic_work_model()
        # quadruple every other node's duration: shape no longer fits
        p = self._pass_for(
            model, distort=lambda nid, d: d * (4.0 if nid % 2 else 0.25)
        )
        report = analysis.eq1_drift(p, model)
        assert report["verdict"] == "stale"
        assert report["worst"][0]["rel"] >= report["worst"][-1]["rel"]

    def test_insufficient_data(self):
        tracer = Tracer()
        cycle = _add_span(tracer, "cycle", 0.0, 2.0, attrs={"cycle": 0})
        _add_span(tracer, "node[0]", 0.0, 1.0, attrs=_node_attrs(0, -1),
                  parent=cycle.span_id)
        p = analysis.solve_passes(tracer)[0]
        report = analysis.eq1_drift(p, analytic_work_model())
        assert report["verdict"] == "insufficient-data"


class TestDoctorAcrossBackends:
    def test_same_dag_from_all_backends(self, assigned_problem, tmp_path):
        hierarchy, estimate = assigned_problem
        dags, eq1_nodes = {}, {}
        for backend in sorted(EXECUTORS):
            tracer = _traced_cycle(hierarchy, estimate, backend)
            # analyze through the exported file, as the CLI would
            path = tmp_path / f"{backend}.jsonl"
            obs.write_spans_jsonl(tracer, path)
            report = obs.doctor_report(obs.load_trace(path))
            dags[backend] = json.dumps(report["dag"], sort_keys=True)
            eq1_nodes[backend] = {
                r["nid"] for p in report["passes"] for r in p["eq1"]["residuals"]
            }
            assert report["verdicts"]
        assert len(set(dags.values())) == 1
        assert len({frozenset(v) for v in eq1_nodes.values()}) == 1

    def test_doctor_is_deterministic_per_trace(self, assigned_problem):
        hierarchy, estimate = assigned_problem
        tracer = _traced_cycle(hierarchy, estimate, "thread")
        a = obs.doctor_report(tracer)
        b = obs.doctor_report(tracer)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_warm_resolve_pass_analyzed(self, two_group_problem):
        from repro.constraints.position import PositionConstraint
        from repro.core.session import SolveSession

        coords, constraints, hierarchy, estimate = two_group_problem
        tracer = obs.Tracer()
        with SolveSession(hierarchy, constraints, batch_size=4) as session, \
                obs.tracing(tracer):
            session.solve(estimate, max_cycles=2, tol=0.0)
            session.add_constraints([PositionConstraint(1, coords[1], 0.05)])
            result = session.resolve()
        report = obs.doctor_report(tracer)
        labels = [p["label"] for p in report["passes"]]
        assert any(lbl.startswith("resolve[") for lbl in labels)
        warm = next(p for p in report["passes"]
                    if p["label"].startswith("resolve["))
        # the warm pass covers exactly the dirty path it re-solved
        assert warm["critical_path"]["n_nodes"] == result.n_dirty
        assert warm["utilization"]["n_lanes"] >= 1

    def test_format_doctor_report_renders(self, assigned_problem):
        hierarchy, estimate = assigned_problem
        report = obs.doctor_report(_traced_cycle(hierarchy, estimate, "serial"))
        text = obs.format_doctor_report(report)
        assert "critical path" in text
        assert "lanes:" in text
        assert "eq1:" in text


def _hotpath_report(spc, key="seconds_per_row"):
    return {"results": {"helix": [
        {"backend": "serial", "kernel_impl": "fast", key: spc},
    ]}}


def _incremental_report(speedup, identical=True):
    return {"results": {"helix": [
        {"backend": "serial", "speedup_vs_cold_solve": speedup,
         "bit_identical_to_full_resolve": identical},
    ]}}


def _write(path, doc):
    path.write_text(json.dumps(doc))
    return str(path)


class TestRegress:
    def test_median_mad(self):
        med, mad = regress.median_mad([1.0, 2.0, 100.0])
        assert med == 2.0 and mad == 1.0
        with pytest.raises(ValueError):
            regress.median_mad([])

    def test_higher_is_worse_discounts_noise(self):
        # median 1.1x baseline with one wild outlier: the MAD band absorbs it
        check = regress.check_metric(
            "m", [1.0, 1.1, 1.2, 5.0], limit=2.0, direction="higher-is-worse"
        )
        assert check["ok"]

    def test_higher_is_worse_fails_on_real_regression(self):
        check = regress.check_metric(
            "m", [3.0, 3.1, 2.9], limit=2.0, direction="higher-is-worse"
        )
        assert not check["ok"]

    def test_lower_is_worse(self):
        ok = regress.check_metric("s", [10.0, 11.0], limit=3.0,
                                  direction="lower-is-worse")
        bad = regress.check_metric("s", [1.0, 1.1], limit=3.0,
                                   direction="lower-is-worse")
        assert ok["ok"] and not bad["ok"]

    def test_unknown_direction(self):
        with pytest.raises(ValueError):
            regress.check_metric("m", [1.0], limit=1.0, direction="sideways")

    def test_run_regress_passes_on_unchanged_figures(self, tmp_path):
        hb = _write(tmp_path / "hb.json", _hotpath_report(1e-4))
        ib = _write(tmp_path / "ib.json", _incremental_report(10.0))
        fresh_h = [_write(tmp_path / f"fh{i}.json", _hotpath_report(1e-4 * s))
                   for i, s in enumerate([1.0, 1.05, 0.95])]
        fresh_i = [_write(tmp_path / f"fi{i}.json", _incremental_report(sp))
                   for i, sp in enumerate([9.0, 10.0, 11.0])]
        report = regress.run_regress(
            hotpath_baseline=hb, incremental_baseline=ib,
            fresh_hotpath=fresh_h, fresh_incremental=fresh_i,
        )
        assert report["ok"] and report["failures"] == []
        assert len(report["checks"]) == 3

    def test_run_regress_fails_on_3x_slowdown(self, tmp_path):
        hb = _write(tmp_path / "hb.json", _hotpath_report(1e-4))
        fresh = [_write(tmp_path / f"f{i}.json", _hotpath_report(3e-4 * s))
                 for i, s in enumerate([1.0, 1.02, 0.98])]
        report = regress.run_regress(hotpath_baseline=hb, fresh_hotpath=fresh)
        assert not report["ok"]
        assert report["failures"] == [
            "hotpath.helix.serial.fast.seconds_per_row"
        ]
        assert "FAIL" in regress.format_regress_report(report)

    def test_hotpath_metric_reads_legacy_key(self, tmp_path):
        # committed baselines predate the seconds_per_row rename; the
        # legacy seconds_per_constraint key must stay readable
        legacy = _hotpath_report(2e-4, key="seconds_per_constraint")
        assert regress.hotpath_metric(legacy) == 2e-4
        hb = _write(tmp_path / "hb.json", legacy)
        fresh = [_write(tmp_path / "f.json", _hotpath_report(2.1e-4))]
        report = regress.run_regress(hotpath_baseline=hb, fresh_hotpath=fresh)
        assert report["ok"]

    def test_run_regress_records_environment(self, tmp_path):
        hb = _write(tmp_path / "hb.json", _hotpath_report(1e-4))
        fresh = [_write(tmp_path / "f.json", _hotpath_report(1e-4))]
        report = regress.run_regress(
            hotpath_baseline=hb, fresh_hotpath=fresh, repeats=5, seed=3
        )
        env = report["environment"]
        assert env["backend"] == "serial" and env["workers"] == 1
        assert env["kernel_impl"] == "fast" and env["repeats"] == 5
        assert env["seed"] == 3 and env["quick"] is False
        assert env["fresh_hotpath_reports"] == [str(fresh[0])]

    def test_run_regress_fails_on_lost_bit_identity(self, tmp_path):
        ib = _write(tmp_path / "ib.json", _incremental_report(10.0))
        fresh = [_write(tmp_path / "f.json",
                        _incremental_report(10.0, identical=False))]
        report = regress.run_regress(
            incremental_baseline=ib, fresh_incremental=fresh
        )
        assert not report["ok"]
        assert "incremental.helix.serial.bit_identical_to_full_resolve" in (
            report["failures"]
        )

    def test_bench_gates_share_the_judgment(self, tmp_path):
        # the benchmark runners' --check-against path goes through the
        # same check_metric used here
        import sys

        sys.path.insert(0, "benchmarks")
        try:
            import bench_hotpath
            import bench_incremental
        finally:
            sys.path.pop(0)
        hb = tmp_path / "hb.json"
        hb.write_text(json.dumps(_hotpath_report(1e-4)))
        assert bench_hotpath._check_regression(
            _hotpath_report(1.5e-4), str(hb), 2.0) == 0
        assert bench_hotpath._check_regression(
            _hotpath_report(3e-4), str(hb), 2.0) == 1
        assert bench_incremental._gate(_incremental_report(10.0), None, 3.0) == 0
        assert bench_incremental._gate(_incremental_report(2.0), None, 3.0) == 1
        assert bench_incremental._gate(
            _incremental_report(10.0, identical=False), None, 3.0) == 1


class TestObsCLI:
    @pytest.fixture
    def trace_file(self, assigned_problem, tmp_path):
        hierarchy, estimate = assigned_problem
        path = tmp_path / "trace.jsonl"
        obs.write_spans_jsonl(
            _traced_cycle(hierarchy, estimate, "thread"), path
        )
        return str(path)

    def test_doctor(self, trace_file, tmp_path, capsys):
        out = tmp_path / "doctor.json"
        rc = main(["obs", "doctor", trace_file, "--out", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "critical path" in text
        report = json.loads(out.read_text())
        assert report["passes"] and report["dag"]["edges"]

    def test_critical_path(self, trace_file, capsys):
        assert main(["obs", "critical-path", trace_file]) == 0
        assert "critical path over" in capsys.readouterr().out

    def test_doctor_rejects_empty_trace(self, tmp_path):
        tracer = Tracer()
        _add_span(tracer, "solve", 0.0, 1.0)
        path = tmp_path / "empty.jsonl"
        obs.write_spans_jsonl(tracer, path)
        with pytest.raises(SystemExit, match="cannot analyze"):
            main(["obs", "doctor", str(path)])

    def test_regress_pass_and_fail(self, tmp_path, capsys):
        hb = _write(tmp_path / "hb.json", _hotpath_report(1e-4))
        good = _write(tmp_path / "good.json", _hotpath_report(1.1e-4))
        bad = _write(tmp_path / "bad.json", _hotpath_report(3e-4))
        out = tmp_path / "regress.json"
        rc = main([
            "obs", "regress", "--only", "hotpath", "--hotpath-baseline", hb,
            "--fresh-hotpath", good, "--out", str(out),
        ])
        assert rc == 0
        assert json.loads(out.read_text())["ok"]
        rc = main([
            "obs", "regress", "--only", "hotpath", "--hotpath-baseline", hb,
            "--fresh-hotpath", bad, "--out", str(out),
        ])
        assert rc == 1
        err_text = capsys.readouterr().out
        assert "seconds_per_row" in err_text  # offending metric named
        assert not json.loads(out.read_text())["ok"]

    def test_regress_missing_baseline_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="regress"):
            main(["obs", "regress", "--only", "hotpath",
                  "--hotpath-baseline", str(tmp_path / "nope.json")])


class TestWorkModelResidualAPI:
    def test_node_work_batch_matches_scalar(self):
        model = analytic_work_model()
        n, rows, m = [6, 12, 24], [3, 6, 9], [3, 4, 4]
        batch = model.node_work_batch(n, rows, m)
        assert batch == pytest.approx(
            [model.node_work(*args) for args in zip(n, rows, m)]
        )

    def test_residuals_scale(self):
        model = analytic_work_model()
        n, rows, m = [6, 12, 24], [3, 6, 9], [3, 4, 4]
        predicted = model.node_work_batch(n, rows, m)
        p2, resid = model.residuals(n, rows, m, 2.0 * predicted, scale=2.0)
        assert p2 == pytest.approx(predicted)
        assert resid == pytest.approx(np.zeros(3), abs=1e-15)

    def test_residuals_shape_mismatch(self):
        from repro.errors import WorkModelError

        model = analytic_work_model()
        with pytest.raises(WorkModelError):
            model.residuals([6, 12], [3, 6], [3, 4], [1.0])

    def test_drift_report_recovers_host_scale(self):
        from repro.core.workmodel import drift_report

        model = WorkModel(np.array([1e-7, 1e-8, 1e-9, 1e-8, 1e-9]))
        n = np.array([50, 100, 200, 400, 800])
        rows = np.array([10, 20, 30, 40, 50])
        m = np.array([8, 8, 8, 8, 8])
        measured = 3.5 * model.node_work_batch(n, rows, m)
        report = drift_report(model, n, rows, m, measured)
        assert report["verdict"] == "calibrated"
        assert report["scale"] == pytest.approx(3.5)

    def test_drift_report_insufficient(self):
        from repro.core.workmodel import drift_report

        model = analytic_work_model()
        report = drift_report(model, [6], [3], [3], [0.1])
        assert report["verdict"] == "insufficient-data"
        assert report["residuals"] == []
