"""Tests for the flat and hierarchical solvers, including equivalence."""

import numpy as np
import pytest

from repro.constraints import DistanceConstraint
from repro.core.flat import FlatSolver
from repro.core.hier_solver import HierarchicalSolver
from repro.core.hierarchy import Hierarchy, HierarchyNode, assign_constraints
from repro.core.state import StructureEstimate
from repro.errors import HierarchyError
from repro.linalg import recording


class TestFlatSolver:
    def test_converges_square(self, square_constraints, square_estimate, square_coords):
        solver = FlatSolver(square_constraints, batch_size=4)
        report = solver.solve(square_estimate, max_cycles=200, tol=1e-4)
        assert report.converged
        assert report.estimate.rmsd(square_coords) < 0.15

    def test_cycle_reduces_uncertainty(self, square_constraints, square_estimate):
        solver = FlatSolver(square_constraints, batch_size=4)
        res = solver.run_cycle(square_estimate)
        assert res.estimate.atom_uncertainty().mean() < square_estimate.atom_uncertainty().mean()

    def test_row_count(self, square_constraints):
        solver = FlatSolver(square_constraints, batch_size=4)
        # 2 position constraints (3 rows each) + 5 distances
        assert solver.n_constraint_rows == 11

    def test_seconds_per_constraint(self, square_constraints, square_estimate):
        res = FlatSolver(square_constraints, batch_size=4).run_cycle(square_estimate)
        assert res.seconds_per_constraint == pytest.approx(res.seconds / 11)

    def test_uses_outer_recorder(self, square_constraints, square_estimate):
        solver = FlatSolver(square_constraints, batch_size=4)
        with recording() as rec:
            res = solver.run_cycle(square_estimate)
        assert res.recorder is rec
        assert len(rec.events) > 0

    def test_batch_size_affects_batch_count(self, square_constraints):
        assert len(FlatSolver(square_constraints, batch_size=1).batches) > len(
            FlatSolver(square_constraints, batch_size=16).batches
        )


class TestHierarchicalSolver:
    def test_exact_match_with_flat_linear(self, two_group_problem):
        coords, constraints, hierarchy, estimate = two_group_problem
        flat = FlatSolver(constraints, batch_size=4).run_cycle(estimate)
        assign_constraints(hierarchy, constraints)
        hier = HierarchicalSolver(hierarchy, batch_size=4).run_cycle(estimate)
        assert np.allclose(flat.estimate.mean, hier.estimate.mean, atol=1e-12)
        assert np.allclose(flat.estimate.covariance, hier.estimate.covariance, atol=1e-12)

    def test_close_match_with_flat_nonlinear(self, helix2_problem):
        """Nonlinear constraints linearize at different points under the two
        orders and the helix has no absolute anchors (gauge freedom), so we
        compare the gauge-invariant quantity: mean constraint residual after
        one cycle must improve similarly under both organizations."""
        problem = helix2_problem
        estimate = problem.initial_estimate(0)
        flat = FlatSolver(problem.constraints, batch_size=16).run_cycle(estimate)
        hier = HierarchicalSolver(problem.hierarchy, batch_size=16).run_cycle(estimate)

        def mean_residual(est):
            coords = est.coords
            return np.mean([abs(c.residual(coords)[0]) for c in problem.constraints])

        initial = mean_residual(estimate)
        res_flat = mean_residual(flat.estimate)
        res_hier = mean_residual(hier.estimate)
        assert res_flat < initial and res_hier < initial
        assert 0.5 < res_flat / res_hier < 2.0

    def test_records_cover_all_nodes(self, helix2_problem):
        problem = helix2_problem
        res = HierarchicalSolver(problem.hierarchy, batch_size=16).run_cycle(
            problem.initial_estimate(0)
        )
        assert {r.nid for r in res.records} == {n.nid for n in problem.hierarchy.nodes}

    def test_events_tagged_by_node(self, helix2_problem):
        problem = helix2_problem
        res = HierarchicalSolver(problem.hierarchy, batch_size=16).run_cycle(
            problem.initial_estimate(0)
        )
        for record in res.records:
            assert all(e.tag == record.nid for e in record.events)

    def test_node_with_constraints_has_events(self, helix2_problem):
        problem = helix2_problem
        res = HierarchicalSolver(problem.hierarchy, batch_size=16).run_cycle(
            problem.initial_estimate(0)
        )
        for record in res.records:
            node = problem.hierarchy.node(record.nid)
            if node.n_constraint_rows > 0:
                assert record.events
            assert record.flops >= 0

    def test_estimate_size_mismatch_rejected(self, helix2_problem):
        problem = helix2_problem
        wrong = StructureEstimate.from_coords(np.zeros((3, 3)), sigma=1.0)
        with pytest.raises(HierarchyError, match="atoms"):
            HierarchicalSolver(problem.hierarchy).run_cycle(wrong)

    def test_solve_reduces_superposed_rmsd(self, helix2_problem):
        from repro.molecules.superpose import superposed_rmsd

        problem = helix2_problem
        estimate = problem.initial_estimate(3)
        before = superposed_rmsd(estimate.coords, problem.true_coords)
        solver = HierarchicalSolver(problem.hierarchy, batch_size=16)
        report = solver.solve(estimate, max_cycles=10, tol=1e-6)
        after = superposed_rmsd(report.estimate.coords, problem.true_coords)
        assert after < 0.5 * before

    def test_unconstrained_node_passthrough(self, rng):
        """A parent with no own constraints must pass its children through."""
        left = HierarchyNode(atoms=np.array([0, 1]), name="L")
        right = HierarchyNode(atoms=np.array([2, 3]), name="R")
        root = HierarchyNode(atoms=np.arange(4), children=[left, right])
        h = Hierarchy(root, 4)
        cons = [DistanceConstraint(0, 1, 2.0, 0.1), DistanceConstraint(2, 3, 2.0, 0.1)]
        assign_constraints(h, cons)
        est = StructureEstimate.from_coords(rng.normal(0, 1, (4, 3)), sigma=1.0)
        res = HierarchicalSolver(h, batch_size=4).run_cycle(est)
        root_record = [r for r in res.records if r.nid == root.nid][0]
        assert root_record.n_batches == 0
        assert not root_record.events

    def test_hierarchical_cheaper_than_flat(self, helix2_problem):
        """The core Table 1 claim at small scale: fewer FLOPs via hierarchy."""
        problem = helix2_problem
        estimate = problem.initial_estimate(0)
        with recording() as rec_flat:
            FlatSolver(problem.constraints, batch_size=16).run_cycle(estimate)
        with recording() as rec_hier:
            HierarchicalSolver(problem.hierarchy, batch_size=16).run_cycle(estimate)
        assert rec_hier.total_flops() < rec_flat.total_flops()
