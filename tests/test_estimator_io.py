"""Tests for the StructureEstimator facade and serialization."""

import numpy as np
import pytest

from repro import io as rio
from repro.core.estimator import DECOMPOSITIONS, StructureEstimator
from repro.core.hierarchy import Hierarchy, HierarchyNode
from repro.core.state import StructureEstimate
from repro.errors import HierarchyError
from repro.constraints import (
    AngleConstraint,
    DistanceBoundConstraint,
    DistanceConstraint,
    LinearConstraint,
    PositionConstraint,
    TorsionConstraint,
)


class TestStructureEstimator:
    def test_solve_square(self, square_coords, square_constraints, rng):
        est = StructureEstimator(4, square_constraints, decomposition="flat")
        noisy = square_coords + rng.normal(0, 0.2, square_coords.shape)
        solution = est.solve(noisy, prior_sigma=1.0, max_cycles=200, tol=1e-4)
        assert solution.converged
        assert solution.estimate.rmsd(square_coords) < 0.15

    @pytest.mark.parametrize("decomposition", DECOMPOSITIONS)
    def test_all_decompositions_run(self, helix2_problem, decomposition):
        problem = helix2_problem
        est = StructureEstimator(
            problem.n_atoms,
            problem.constraints,
            decomposition=decomposition,
            max_leaf_atoms=24,
        )
        solution = est.solve(problem.initial_estimate(0), max_cycles=2)
        assert solution.estimate.n_atoms == problem.n_atoms
        assert est.hierarchy is not None

    def test_explicit_hierarchy_used(self, helix2_problem):
        problem = helix2_problem
        est = StructureEstimator(
            problem.n_atoms, problem.constraints, decomposition=problem.hierarchy
        )
        est.solve(problem.initial_estimate(0), max_cycles=1)
        assert est.hierarchy is problem.hierarchy

    def test_unknown_decomposition(self):
        with pytest.raises(HierarchyError, match="unknown"):
            StructureEstimator(4, [], decomposition="magic")

    def test_atom_count_mismatch(self, helix2_problem):
        est = StructureEstimator(5, helix2_problem.constraints, decomposition="flat")
        with pytest.raises(HierarchyError, match="atoms"):
            est.solve(helix2_problem.initial_estimate(0))

    def test_accepts_estimate_or_coords(self, square_constraints, square_coords):
        est = StructureEstimator(4, square_constraints, decomposition="flat")
        a = est.solve(square_coords, max_cycles=1)
        b = est.solve(
            StructureEstimate.from_coords(square_coords, sigma=10.0), max_cycles=1
        )
        assert np.allclose(a.coords, b.coords)

    def test_bound_violations_counter(self):
        cons = [
            DistanceBoundConstraint(0, 1, None, 1.0, 0.1),
            DistanceConstraint(0, 1, 1.0, 0.1),
        ]
        est = StructureEstimator(2, cons, decomposition="flat")
        far = np.array([[0.0, 0, 0], [5.0, 0, 0]])
        near = np.array([[0.0, 0, 0], [0.5, 0, 0]])
        assert est.bound_violations(far) == 1
        assert est.bound_violations(near) == 0


class TestEstimateIO:
    def test_roundtrip(self, tmp_path, rng):
        coords = rng.normal(0, 2, (3, 3))
        a = rng.normal(size=(9, 9))
        est = StructureEstimate(coords.ravel(), a @ a.T + np.eye(9))
        path = tmp_path / "est.npz"
        rio.save_estimate(path, est)
        loaded = rio.load_estimate(path)
        assert np.array_equal(loaded.mean, est.mean)
        assert np.array_equal(loaded.covariance, est.covariance)

    def test_wrong_archive_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, foo=np.zeros(3))
        with pytest.raises(rio.SerializationError):
            rio.load_estimate(path)


class TestProblemIO:
    def test_helix_roundtrip(self, tmp_path, helix2_problem):
        path = tmp_path / "helix.npz"
        rio.save_problem(path, helix2_problem)
        loaded = rio.load_problem(path)
        assert loaded.n_atoms == helix2_problem.n_atoms
        assert loaded.n_constraint_rows == helix2_problem.n_constraint_rows
        assert np.array_equal(loaded.true_coords, helix2_problem.true_coords)
        # hierarchy topology preserved
        assert len(loaded.hierarchy) == len(helix2_problem.hierarchy)
        assert [n.name for n in loaded.hierarchy.post_order()] == [
            n.name for n in helix2_problem.hierarchy.post_order()
        ]

    def test_solves_identically_after_roundtrip(self, tmp_path, helix2_problem):
        from repro.core.hier_solver import HierarchicalSolver

        path = tmp_path / "helix.npz"
        rio.save_problem(path, helix2_problem)
        loaded = rio.load_problem(path)
        loaded.assign()
        helix2_problem.assign()
        est = helix2_problem.initial_estimate(0)
        a = HierarchicalSolver(helix2_problem.hierarchy, 16).run_cycle(est)
        b = HierarchicalSolver(loaded.hierarchy, 16).run_cycle(est)
        assert np.allclose(a.estimate.mean, b.estimate.mean)

    def test_every_constraint_type_roundtrips(self, tmp_path):
        from repro.core.hierarchy import flat_hierarchy
        from repro.molecules.problem import StructureProblem

        coords = np.array([[0.0, 0, 0], [1.5, 0, 0], [1.5, 1.5, 0], [0, 1.5, 1.0]])
        cons = [
            DistanceConstraint(0, 1, 1.5, 0.1),
            DistanceBoundConstraint(1, 2, 1.0, None, 0.2),
            DistanceBoundConstraint(0, 2, None, 4.0, 0.2),
            AngleConstraint(0, 1, 2, 1.2, 0.05),
            TorsionConstraint(0, 1, 2, 3, 0.5, 0.1),
            PositionConstraint(0, coords[0], 0.3),
            LinearConstraint(
                (0, 3), np.ones((2, 6)), np.array([1.0, 2.0]), np.array([0.5, 0.5])
            ),
        ]
        problem = StructureProblem(
            name="mixed",
            true_coords=coords,
            constraints=cons,
            hierarchy=flat_hierarchy(4),
        )
        path = tmp_path / "mixed.npz"
        rio.save_problem(path, problem)
        loaded = rio.load_problem(path)
        assert [type(c).__name__ for c in loaded.constraints] == [
            type(c).__name__ for c in cons
        ]
        # identical measurement behaviour
        for a, b in zip(cons, loaded.constraints):
            assert np.allclose(a.residual(coords), b.residual(coords))
            assert np.allclose(a.jacobian(coords), b.jacobian(coords))

    def test_wrong_archive_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, foo=np.zeros(3))
        with pytest.raises(rio.SerializationError):
            rio.load_problem(path)
