"""Tests for the structure hierarchy and constraint assignment."""

import numpy as np
import pytest

from repro.constraints import DistanceConstraint
from repro.core.hierarchy import (
    Hierarchy,
    HierarchyNode,
    assign_constraints,
    flat_hierarchy,
)
from repro.errors import HierarchyError


def three_level(n_atoms=8):
    """root -> [left(0..3) -> [l0(0,1), l1(2,3)], right(4..7)]"""
    l0 = HierarchyNode(atoms=np.array([0, 1]), name="l0")
    l1 = HierarchyNode(atoms=np.array([2, 3]), name="l1")
    left = HierarchyNode(atoms=np.array([0, 1, 2, 3]), children=[l0, l1], name="left")
    right = HierarchyNode(atoms=np.array([4, 5, 6, 7]), name="right")
    root = HierarchyNode(atoms=np.arange(8), children=[left, right], name="root")
    return Hierarchy(root, n_atoms)


class TestStructure:
    def test_post_order_ids(self):
        h = three_level()
        names = [n.name for n in h.post_order()]
        assert names == ["l0", "l1", "left", "right", "root"]
        assert [n.nid for n in h.post_order()] == [0, 1, 2, 3, 4]

    def test_depths(self):
        h = three_level()
        by_name = {n.name: n.depth for n in h.nodes}
        assert by_name == {"l0": 2, "l1": 2, "left": 1, "right": 1, "root": 0}

    def test_leaves(self):
        h = three_level()
        assert {n.name for n in h.leaves()} == {"l0", "l1", "right"}

    def test_height(self):
        assert three_level().height() == 2

    def test_parent_links(self):
        h = three_level()
        by_name = {n.name: n for n in h.nodes}
        assert by_name["l0"].parent is by_name["left"]
        assert by_name["root"].parent is None

    def test_state_dims(self):
        h = three_level()
        assert h.root.state_dim == 24
        assert h.nodes[0].state_dim == 6

    def test_len(self):
        assert len(three_level()) == 5

    def test_column_map(self):
        h = three_level()
        cmap = h.nodes[1].column_map(8)  # l1 owns atoms 2,3
        assert cmap[2] == 0 and cmap[3] == 1
        assert np.all(cmap[[0, 1, 4, 5, 6, 7]] == -1)


class TestValidation:
    def test_children_concat_violation(self):
        a = HierarchyNode(atoms=np.array([0]))
        b = HierarchyNode(atoms=np.array([1]))
        bad_root = HierarchyNode(atoms=np.array([1, 0]), children=[a, b])  # wrong order
        with pytest.raises(HierarchyError, match="concatenation"):
            Hierarchy(bad_root, 2)

    def test_duplicate_atoms_rejected(self):
        a = HierarchyNode(atoms=np.array([0, 1]))
        b = HierarchyNode(atoms=np.array([1]))
        root = HierarchyNode(atoms=np.array([0, 1, 1]), children=[a, b])
        with pytest.raises(HierarchyError, match="duplicate"):
            Hierarchy(root, 3)

    def test_out_of_range_rejected(self):
        root = HierarchyNode(atoms=np.array([0, 5]))
        with pytest.raises(HierarchyError, match="range"):
            Hierarchy(root, 3)

    def test_empty_root_rejected(self):
        with pytest.raises(HierarchyError, match="no atoms"):
            Hierarchy(HierarchyNode(atoms=np.array([], dtype=np.int64)), 3)

    def test_flat_hierarchy(self):
        h = flat_hierarchy(5)
        assert len(h) == 1
        assert h.root.is_leaf
        assert np.array_equal(h.root.atoms, np.arange(5))


class TestLCA:
    def test_atom_leaf_map(self):
        h = three_level()
        leaf_of = h.atom_leaf_map()
        by_name = {n.name: n.nid for n in h.nodes}
        assert leaf_of[0] == by_name["l0"]
        assert leaf_of[3] == by_name["l1"]
        assert leaf_of[6] == by_name["right"]

    def test_containing_node_within_leaf(self):
        h = three_level()
        assert h.containing_node([0, 1]).name == "l0"

    def test_containing_node_spanning_leaves(self):
        h = three_level()
        assert h.containing_node([0, 2]).name == "left"

    def test_containing_node_spanning_halves(self):
        h = three_level()
        assert h.containing_node([1, 6]).name == "root"

    def test_lca_of_node_with_itself(self):
        h = three_level()
        n = h.nodes[0]
        assert h.lowest_common_ancestor(n, n) is n

    def test_uncovered_atom(self):
        l0 = HierarchyNode(atoms=np.array([0]))
        h = Hierarchy(HierarchyNode(atoms=np.array([0]), children=[l0]), 2)
        with pytest.raises(HierarchyError, match="not covered"):
            h.containing_node([1])


class TestAssignment:
    def test_local_constraint_to_leaf(self):
        h = three_level()
        cons = [DistanceConstraint(0, 1, 1.0, 0.1)]
        assign_constraints(h, cons)
        assert h.nodes[0].constraints == cons

    def test_spanning_constraint_to_lca(self):
        h = three_level()
        cons = [DistanceConstraint(0, 3, 1.0, 0.1)]
        assign_constraints(h, cons)
        by_name = {n.name: n for n in h.nodes}
        assert by_name["left"].constraints == cons

    def test_global_constraint_to_root(self):
        h = three_level()
        cons = [DistanceConstraint(0, 7, 1.0, 0.1)]
        assign_constraints(h, cons)
        assert h.root.constraints == cons

    def test_reassignment_clears(self):
        h = three_level()
        assign_constraints(h, [DistanceConstraint(0, 1, 1.0, 0.1)])
        assign_constraints(h, [DistanceConstraint(4, 5, 1.0, 0.1)])
        assert not h.nodes[0].constraints
        by_name = {n.name: n for n in h.nodes}
        assert len(by_name["right"].constraints) == 1

    def test_every_constraint_assigned_once(self):
        h = three_level()
        cons = [
            DistanceConstraint(0, 1, 1.0, 0.1),
            DistanceConstraint(2, 3, 1.0, 0.1),
            DistanceConstraint(1, 2, 1.0, 0.1),
            DistanceConstraint(0, 7, 1.0, 0.1),
        ]
        assign_constraints(h, cons)
        assigned = [c for n in h.nodes for c in n.constraints]
        assert sorted(id(c) for c in assigned) == sorted(id(c) for c in cons)

    def test_rows_by_level(self):
        h = three_level()
        assign_constraints(
            h,
            [DistanceConstraint(0, 1, 1.0, 0.1), DistanceConstraint(0, 7, 1.0, 0.1)],
        )
        rows = h.constraint_rows_by_level()
        assert rows[2] == 1 and rows[0] == 1

    def test_leaf_fraction(self):
        h = three_level()
        assign_constraints(
            h,
            [DistanceConstraint(0, 1, 1.0, 0.1), DistanceConstraint(0, 7, 1.0, 0.1)],
        )
        assert h.leaf_constraint_fraction() == pytest.approx(0.5)

    def test_leaf_fraction_no_constraints(self):
        h = three_level()
        h.clear_constraints()
        assert h.leaf_constraint_fraction() == 0.0
