"""Integration tests: end-to-end pipelines and paper shape criteria.

These run the full stack — generator → solver → recorder → assignment →
machine simulator — on reduced workloads and assert the qualitative
properties the paper's exhibits rest on.
"""

import numpy as np
import pytest

from repro.core.flat import FlatSolver
from repro.core.hier_solver import HierarchicalSolver
from repro.core.update import UpdateOptions
from repro.experiments.report import growth_exponent
from repro.linalg import OpCategory, recording
from repro.machine import CHALLENGE, DASH, simulate_solve
from repro.molecules.ribosome import build_ribo30s
from repro.molecules.rna import build_helix
from repro.molecules.superpose import superposed_rmsd


@pytest.fixture(scope="module")
def helix8_cycle():
    problem = build_helix(8)
    problem.assign()
    # Simulator inputs are recorded with the reference kernels: the DASH
    # rates are calibrated against the paper's kernel mix, which the fast
    # symmetric kernels deliberately change (see docs/performance.md).
    solver = HierarchicalSolver(
        problem.hierarchy,
        batch_size=16,
        options=UpdateOptions(kernel_impl="reference"),
    )
    cycle = solver.run_cycle(problem.initial_estimate(0))
    return problem, cycle


class TestTable1Shape:
    """Hierarchical beats flat, and the gap widens with molecule size."""

    @pytest.fixture(scope="class")
    def flop_counts(self):
        out = {}
        for length in (1, 2, 4):
            problem = build_helix(length)
            problem.assign()
            est = problem.initial_estimate(0)
            with recording() as rec_flat:
                FlatSolver(problem.constraints, batch_size=16).run_cycle(est)
            with recording() as rec_hier:
                HierarchicalSolver(problem.hierarchy, batch_size=16).run_cycle(est)
            out[length] = (
                rec_flat.total_flops(),
                rec_hier.total_flops(),
                problem.n_constraint_rows,
            )
        return out

    def test_hierarchy_always_cheaper(self, flop_counts):
        for flat, hier, _rows in flop_counts.values():
            assert hier < flat

    def test_speedup_grows_with_size(self, flop_counts):
        speedups = [flat / hier for flat, hier, _ in flop_counts.values()]
        assert speedups == sorted(speedups)

    def test_flat_per_constraint_quadratic(self, flop_counts):
        lengths = sorted(flop_counts)
        per = [flop_counts[l][0] / flop_counts[l][2] for l in lengths]
        exponent = growth_exponent(lengths, per)
        assert 1.6 < exponent < 2.4  # O(n²) per scalar constraint

    def test_hier_per_constraint_subquadratic(self, flop_counts):
        lengths = sorted(flop_counts)
        per = [flop_counts[l][1] / flop_counts[l][2] for l in lengths]
        exponent = growth_exponent(lengths, per)
        flat_exp = growth_exponent(
            lengths, [flop_counts[l][0] / flop_counts[l][2] for l in lengths]
        )
        assert exponent < flat_exp - 0.4


class TestParallelShapes:
    def test_dash_speedup_curve(self, helix8_cycle):
        problem, cycle = helix8_cycle
        results = {
            p: simulate_solve(cycle, problem.hierarchy, DASH(), p) for p in (1, 2, 4, 8, 16)
        }
        speedups = [results[1].work_time / results[p].work_time for p in (2, 4, 8, 16)]
        assert speedups == sorted(speedups)
        assert speedups[-1] > 8.0  # decent efficiency at 16

    def test_non_power_of_two_dip(self, helix8_cycle):
        """Binary helix: efficiency at 6 processors drops below both 4 and 8."""
        problem, cycle = helix8_cycle
        t = {
            p: simulate_solve(cycle, problem.hierarchy, DASH(), p).work_time
            for p in (1, 4, 6, 8)
        }
        eff = {p: t[1] / t[p] / p for p in (4, 6, 8)}
        assert eff[6] < eff[4] and eff[6] < eff[8]

    def test_ribo_no_deep_dip(self):
        """High branching factor: ribo30S efficiency at 6 close to at 8."""
        problem = build_ribo30s()
        problem.assign()
        cycle = HierarchicalSolver(
            problem.hierarchy,
            batch_size=16,
            options=UpdateOptions(kernel_impl="reference"),
        ).run_cycle(problem.initial_estimate(0))
        t = {
            p: simulate_solve(cycle, problem.hierarchy, DASH(), p).work_time
            for p in (1, 4, 6, 8)
        }
        eff = {p: t[1] / t[p] / p for p in (4, 6, 8)}
        assert eff[6] > 0.9 * min(eff[4], eff[8])

    def test_mm_dominates_and_scales(self, helix8_cycle):
        problem, cycle = helix8_cycle
        r1 = simulate_solve(cycle, problem.hierarchy, DASH(), 1)
        r16 = simulate_solve(cycle, problem.hierarchy, DASH(), 16)
        assert r1.breakdown[OpCategory.MATMAT] == max(r1.breakdown.seconds.values())
        mm_speedup = r1.breakdown[OpCategory.MATMAT] / r16.breakdown[OpCategory.MATMAT]
        assert mm_speedup > 10.0

    def test_ds_scales_worse_on_dash_than_challenge(self, helix8_cycle):
        problem, cycle = helix8_cycle
        ds = {}
        for cfg in (DASH(), CHALLENGE()):
            r1 = simulate_solve(cycle, problem.hierarchy, cfg, 1)
            r16 = simulate_solve(cycle, problem.hierarchy, cfg, 16)
            ds[cfg.name] = (
                r1.breakdown[OpCategory.DENSE_SPARSE]
                / r16.breakdown[OpCategory.DENSE_SPARSE]
            )
        assert ds["DASH"] < ds["Challenge"]

    def test_chol_scales_poorly(self, helix8_cycle):
        problem, cycle = helix8_cycle
        r1 = simulate_solve(cycle, problem.hierarchy, DASH(), 1)
        r16 = simulate_solve(cycle, problem.hierarchy, DASH(), 16)
        chol_speedup = r1.breakdown[OpCategory.CHOLESKY] / r16.breakdown[OpCategory.CHOLESKY]
        mm_speedup = r1.breakdown[OpCategory.MATMAT] / r16.breakdown[OpCategory.MATMAT]
        assert chol_speedup < mm_speedup


class TestEndToEndAccuracy:
    def test_helix_reconstruction(self):
        """Full pipeline: perturbed helix converges back to its geometry."""
        problem = build_helix(2)
        problem.assign()
        solver = HierarchicalSolver(problem.hierarchy, batch_size=16)
        estimate = problem.initial_estimate(1)
        before = superposed_rmsd(estimate.coords, problem.true_coords)
        report = solver.solve(estimate, max_cycles=12, tol=1e-5)
        after = superposed_rmsd(report.estimate.coords, problem.true_coords)
        assert after < 0.35 * before

    def test_uncertainty_shrinks_where_data_is(self):
        problem = build_helix(1)
        problem.assign()
        solver = HierarchicalSolver(problem.hierarchy, batch_size=16)
        estimate = problem.initial_estimate(0)
        res = solver.run_cycle(estimate)
        assert res.estimate.atom_uncertainty().max() < estimate.atom_uncertainty().min()

    def test_ribo_cycle_improves_residuals(self):
        problem = build_ribo30s()
        problem.assign()
        solver = HierarchicalSolver(problem.hierarchy, batch_size=16)
        estimate = problem.initial_estimate(0)
        res = solver.run_cycle(estimate)

        def mean_residual(est):
            coords = est.coords
            sample = problem.constraints[::25]
            return float(np.mean([np.abs(c.residual(coords)).mean() for c in sample]))

        # One cycle of a 4 Å-perturbed 900-atom complex: solid but partial
        # progress (full convergence takes 20-200 cycles per the paper).
        assert mean_residual(res.estimate) < 0.9 * mean_residual(estimate)
