"""Shared-memory estimate plane: lifetime, wire size and crash recovery.

The acceptance bar for the comms layer: with a pickling backend, the
per-node task payload is O(handle) bytes instead of O(n²); segments are
owned (created and unlinked) solely by the dispatching process; and the
plane survives the process pool being torn down and rebuilt mid-cycle,
so a resubmitted task re-reads its intact prior.
"""

import glob
import pickle

import numpy as np
import pytest

from repro import obs
from repro.core.hier_solver import HierarchicalSolver
from repro.core.hierarchy import assign_constraints
from repro.core.state import StructureEstimate
from repro.core.update import UpdateOptions
from repro.faults import FaultConfig, FaultInjector, fault_injection
from repro.parallel import (
    ParallelHierarchicalSolver,
    ProcessExecutor,
    SerialExecutor,
    SharedEstimatePlane,
)
from repro.parallel.scheduler import _NodeTask
from repro.parallel.shm import read_prior, write_posterior


@pytest.fixture
def assigned(two_group_problem):
    """(hierarchy, estimate) with constraints assigned to the tree."""
    _, constraints, hierarchy, estimate = two_group_problem
    assign_constraints(hierarchy, constraints)
    return hierarchy, estimate


def _estimate(rng, n_atoms):
    a = rng.normal(0, 1, (3 * n_atoms, 3 * n_atoms))
    return StructureEstimate(
        rng.normal(0, 1, 3 * n_atoms), a @ a.T / (3 * n_atoms) + np.eye(3 * n_atoms)
    )


def _shm_entries():
    return set(glob.glob("/dev/shm/psm_*"))


# ------------------------------------------------------------------ lifetime
class TestPlaneLifetime:
    def test_prior_roundtrip(self, rng):
        est = _estimate(rng, 5)
        with SharedEstimatePlane() as plane:
            handle = plane.put_prior(est)
            got = read_prior(handle)
            assert np.array_equal(got.mean, est.mean)
            assert np.array_equal(got.covariance, est.covariance)

    def test_posterior_roundtrip(self, rng):
        prior, post = _estimate(rng, 4), _estimate(rng, 4)
        with SharedEstimatePlane() as plane:
            handle = plane.put_prior(prior)
            write_posterior(handle, post)
            got = plane.read_posterior(handle)
            assert np.array_equal(got.mean, post.mean)
            assert np.array_equal(got.covariance, post.covariance)
            # the prior slot is untouched by posterior writes
            again = read_prior(handle)
            assert np.array_equal(again.mean, prior.mean)

    def test_posterior_dim_mismatch_rejected(self, rng):
        with SharedEstimatePlane() as plane:
            handle = plane.put_prior(_estimate(rng, 3))
            with pytest.raises(ValueError, match="state dim"):
                write_posterior(handle, _estimate(rng, 4))

    def test_resubmitted_write_overwrites_cleanly(self, rng):
        """Crash recovery rewrites the posterior slot; last write wins."""
        first, second = _estimate(rng, 3), _estimate(rng, 3)
        with SharedEstimatePlane() as plane:
            handle = plane.put_prior(first)
            write_posterior(handle, first)
            write_posterior(handle, second)
            got = plane.read_posterior(handle)
            assert np.array_equal(got.covariance, second.covariance)

    def test_release_is_idempotent(self, rng):
        plane = SharedEstimatePlane()
        handle = plane.put_prior(_estimate(rng, 2))
        assert len(plane) == 1
        plane.release(handle)
        plane.release(handle)  # second release is a no-op
        assert len(plane) == 0
        plane.close()

    def test_close_is_idempotent_and_releases_all(self, rng):
        before = _shm_entries()
        plane = SharedEstimatePlane()
        for _ in range(3):
            plane.put_prior(_estimate(rng, 2))
        assert plane.nbytes() == 3 * 8 * (2 * 6 + 2 * 36)
        plane.close()
        plane.close()
        assert len(plane) == 0 and plane.nbytes() == 0
        assert _shm_entries() == before

    def test_cycle_leaves_no_segments_behind(self, assigned):
        hierarchy, estimate = assigned
        before = _shm_entries()
        with ProcessExecutor(2) as ex:
            solver = ParallelHierarchicalSolver(
                hierarchy, batch_size=8, executor=ex
            )
            solver.run_cycle(estimate)
        assert _shm_entries() == before


# ------------------------------------------------------------------ wire size
class TestWireSize:
    def test_handle_pickles_small(self, rng):
        with SharedEstimatePlane() as plane:
            handle = plane.put_prior(_estimate(rng, 170))  # helix4 scale, n=510
            assert len(pickle.dumps(handle)) < 256

    def test_task_payload_is_o_handle_not_o_n_squared(self, rng):
        """The pickled task must not scale with the covariance size."""
        est = _estimate(rng, 86)  # n=258: covariance alone is 532 KB
        dense = _NodeTask(
            nid=0,
            prior=est,
            constraints=[],
            column_map=np.arange(86),
            batch_size=16,
            options=UpdateOptions(),
        )
        with SharedEstimatePlane() as plane:
            slim = _NodeTask(
                nid=0,
                prior=None,
                constraints=[],
                column_map=np.arange(86),
                batch_size=16,
                options=UpdateOptions(),
                prior_handle=plane.put_prior(est),
            )
            n = est.mean.shape[0]
            assert len(pickle.dumps(dense)) > 8 * n * n
            assert len(pickle.dumps(slim)) < 4096

    def test_plane_active_for_process_backend_by_default(self, assigned):
        hierarchy, _ = assigned
        with ProcessExecutor(2) as ex:
            solver = ParallelHierarchicalSolver(
                hierarchy, batch_size=8, executor=ex
            )
            assert solver._use_shared_memory()
        assert not ParallelHierarchicalSolver(
            hierarchy, executor=SerialExecutor()
        )._use_shared_memory()

    def test_segment_metrics_balance(self, assigned):
        """Every created segment is released by cycle end (obs counters)."""
        hierarchy, estimate = assigned
        registry = obs.MetricsRegistry()
        solver = ParallelHierarchicalSolver(
            hierarchy,
            batch_size=8,
            executor=SerialExecutor(),
            shared_memory=True,  # force the plane even inline
        )
        with obs.metrics_scope(registry):
            result = solver.run_cycle(estimate)
        counters = registry.snapshot()["counters"]
        assert counters["shm.segments_created"] == 3  # two leaves + root
        assert counters["shm.segments_created"] == counters["shm.segments_released"]
        assert counters["shm.bytes_allocated"] > 0
        # and the forced plane changes nothing numerically
        plain = HierarchicalSolver(hierarchy, batch_size=8).run_cycle(estimate)
        assert np.array_equal(result.estimate.mean, plain.estimate.mean)
        assert np.array_equal(result.estimate.covariance, plain.estimate.covariance)


# ------------------------------------------------------------- crash recovery
class TestCrashRecoveryWithPlane:
    def test_soft_crashes_absorbed(self, assigned):
        """crash_p=1.0 raise-mode: every node dies once, then succeeds."""
        hierarchy, estimate = assigned
        serial = HierarchicalSolver(hierarchy, batch_size=8).run_cycle(estimate)
        inj = FaultInjector(FaultConfig(crash_p=1.0, seed=0))
        registry = obs.MetricsRegistry()
        with ProcessExecutor(2) as ex:
            solver = ParallelHierarchicalSolver(
                hierarchy, batch_size=8, executor=ex
            )
            with fault_injection(inj), obs.metrics_scope(registry):
                result = solver.run_cycle(estimate)
        assert np.array_equal(result.estimate.mean, serial.estimate.mean)
        assert np.array_equal(result.estimate.covariance, serial.estimate.covariance)
        counters = registry.snapshot()["counters"]
        assert counters["executor.tasks_resubmitted"] >= 3
        assert counters["shm.segments_created"] == counters["shm.segments_released"]

    def test_plane_survives_pool_rebuild(self, assigned):
        """Hard-kill mode breaks the pool; rebuilt workers re-read intact
        priors from the same named segments and the solve completes."""
        hierarchy, estimate = assigned
        serial = HierarchicalSolver(hierarchy, batch_size=8).run_cycle(estimate)
        before = _shm_entries()
        inj = FaultInjector(FaultConfig(crash_p=0.5, crash_mode="kill", seed=7))
        registry = obs.MetricsRegistry()
        with ProcessExecutor(2) as ex:
            solver = ParallelHierarchicalSolver(
                hierarchy, batch_size=8, executor=ex
            )
            with fault_injection(inj), obs.metrics_scope(registry):
                result = solver.run_cycle(estimate)
        assert np.array_equal(result.estimate.mean, serial.estimate.mean)
        assert np.array_equal(result.estimate.covariance, serial.estimate.covariance)
        counters = registry.snapshot()["counters"]
        if counters.get("executor.pool_rebuilds", 0):
            # the rebuild path actually ran and still balanced the books
            assert counters["shm.segments_created"] == counters[
                "shm.segments_released"
            ]
        assert _shm_entries() == before
