"""Fast symmetric kernel path: unit tests and fast-vs-reference properties.

The fast path (``UpdateOptions.kernel_impl="fast"``) must agree with the
reference kernels to rtol 1e-10 on full solves — helix workloads, random
SPD problems, every executor backend and both dispatch modes — while its
building blocks (``symm``, ``trsm_right``, ``syrk_downdate``, the
workspace arena) each match their NumPy references exactly.  The
``vector`` tier (planned assembly feeding the same fast kernels) joins a
three-way harness: vector ≡ fast ≡ reference to the same tolerances,
plus plan-cache reuse counters.
"""

import threading

import numpy as np
import pytest

from repro.core.hier_solver import HierarchicalSolver
from repro.core.state import StructureEstimate
from repro.core.update import KERNEL_IMPLS, UpdateOptions, apply_batch
from repro.constraints import (
    AngleConstraint,
    DistanceBoundConstraint,
    DistanceConstraint,
    LinearConstraint,
    PositionConstraint,
    TorsionConstraint,
)
from repro.constraints.batch import make_batches
from repro.errors import DimensionError
from repro.linalg import (
    Workspace,
    add_diagonal_inplace,
    gather_cht,
    get_workspace,
    mirror_lower,
    recording,
    spmm_support,
    symm,
    syrk_downdate,
    trsm_right,
)
from repro.linalg.counters import OpCategory
from repro.parallel import (
    ParallelHierarchicalSolver,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
)

RTOL = 1e-10
ATOL = 1e-12
# Full hierarchical cycles accumulate over ~1500 constraint rows, so
# near-zero entries need an absolute floor; 1e-10 absolute on O(10)
# coordinates is still ~1e-11 relative agreement.
SOLVE_ATOL = 1e-10

EXECUTORS = {
    "serial": SerialExecutor,
    "thread": lambda: ThreadExecutor(2),
    "process": lambda: ProcessExecutor(2),
}


def _spd(rng, n):
    a = rng.normal(0, 1, (n, n))
    return a @ a.T / n + np.eye(n)


# --------------------------------------------------------------- unit kernels
class TestSymm:
    def test_matches_dense_product(self, rng):
        c = _spd(rng, 12)
        b = rng.normal(0, 1, (12, 5))
        assert np.allclose(symm(c, b), c @ b, rtol=1e-13)

    def test_writes_into_out_buffer(self, rng):
        c = _spd(rng, 9)
        b = rng.normal(0, 1, (9, 4))
        out = np.empty((9, 4), order="F")
        res = symm(c, b, out=out)
        assert res is out or np.shares_memory(res, out)
        assert np.allclose(out, c @ b)

    def test_c_ordered_symmetric_input_needs_no_copy(self, rng):
        c = np.ascontiguousarray(_spd(rng, 8))
        b = rng.normal(0, 1, (8, 3))
        assert np.allclose(symm(c, b), c @ b)

    def test_rejects_bad_shapes(self, rng):
        with pytest.raises(DimensionError):
            symm(rng.normal(0, 1, (3, 4)), rng.normal(0, 1, (4, 2)))
        with pytest.raises(DimensionError):
            symm(_spd(rng, 4), rng.normal(0, 1, (5, 2)))


class TestTrsm:
    def test_solves_against_transposed_factor(self, rng):
        s = _spd(rng, 6)
        lower = np.linalg.cholesky(s)
        b = rng.normal(0, 1, (10, 6))
        w = trsm_right(lower, b.copy())
        assert np.allclose(w @ lower.T, b, rtol=1e-12)

    def test_no_transpose_form(self, rng):
        s = _spd(rng, 5)
        lower = np.linalg.cholesky(s)
        b = rng.normal(0, 1, (7, 5))
        k = trsm_right(lower, b.copy(), transpose=False)
        assert np.allclose(k @ lower, b, rtol=1e-12)

    def test_overwrites_fortran_rhs_in_place(self, rng):
        s = _spd(rng, 4)
        lower = np.linalg.cholesky(s)
        b = np.asfortranarray(rng.normal(0, 1, (6, 4)))
        w = trsm_right(lower, b)
        assert np.shares_memory(w, b)


class TestSyrkDowndate:
    def test_matches_outer_product_downdate(self, rng):
        c = np.asfortranarray(_spd(rng, 10))
        w = rng.normal(0, 1, (10, 3))
        expected = c - w @ w.T
        res = syrk_downdate(c, w)
        assert np.allclose(res, expected, rtol=1e-12)

    def test_result_exactly_symmetric(self, rng):
        c = np.asfortranarray(_spd(rng, 17))
        res = syrk_downdate(c, rng.normal(0, 1, (17, 4)))
        assert (res == res.T).all()

    def test_works_on_transpose_view_of_c_ordered(self, rng):
        base = np.ascontiguousarray(_spd(rng, 8))
        expected = base - np.outer(base[:, 0], base[:, 0])
        w = base[:, :1].copy()
        syrk_downdate(base.T, w)  # F-contiguous view; symmetric downdate
        assert np.allclose(base, expected, rtol=1e-12)

    def test_rejects_non_fortran_target(self, rng):
        with pytest.raises(DimensionError):
            syrk_downdate(np.ascontiguousarray(_spd(rng, 5)), rng.normal(0, 1, (5, 2)))


class TestSmallKernels:
    def test_mirror_lower_both_orders(self, rng):
        for order in ("C", "F"):
            a = np.array(rng.normal(0, 1, (11, 11)), order=order)
            mirror_lower(a)
            assert (a == a.T).all()

    def test_gather_cht_matches_full_product(self, rng):
        n, m = 14, 4
        c = _spd(rng, n)
        support = np.array([1, 5, 9])
        h = np.zeros((m, n))
        h[:, support] = rng.normal(0, 1, (m, support.size))
        cht = gather_cht(c, h[:, support], support)
        assert np.allclose(cht, c @ h.T, rtol=1e-12)

    def test_spmm_support_matches_full_product(self, rng):
        n, m = 12, 3
        c = _spd(rng, n)
        support = np.array([0, 4, 7, 11])
        h = np.zeros((m, n))
        h[:, support] = rng.normal(0, 1, (m, support.size))
        cht = c @ h.T
        assert np.allclose(
            spmm_support(h[:, support], cht, support), h @ cht, rtol=1e-12
        )

    def test_add_diagonal_inplace(self, rng):
        a = rng.normal(0, 1, (6, 6))
        expected = a + np.diag(np.arange(6.0))
        res = add_diagonal_inplace(a, np.arange(6.0))
        assert res is a
        assert np.allclose(a, expected)

    def test_kernels_emit_events(self, rng):
        c = np.asfortranarray(_spd(rng, 6))
        with recording() as rec:
            symm(c, rng.normal(0, 1, (6, 2)))
            syrk_downdate(c, rng.normal(0, 1, (6, 2)))
        cats = [e.category for e in rec.events]
        assert OpCategory.MATMAT in cats
        assert len(cats) == 2
        assert all(e.flops > 0 and e.bytes > 0 for e in rec.events)


# ----------------------------------------------------------------- workspace
class TestWorkspace:
    def test_same_key_reuses_buffer(self):
        ws = Workspace()
        a = ws.take("x", (4, 3))
        b = ws.take("x", (4, 3))
        assert a is b
        assert ws.hits == 1 and ws.misses == 1

    def test_distinct_names_never_alias(self):
        ws = Workspace()
        a = ws.take("a", (5, 5))
        b = ws.take("b", (5, 5))
        assert not np.shares_memory(a, b)

    def test_alternating_shapes_both_stay_cached(self):
        ws = Workspace()
        a1 = ws.take("x", (3, 3))
        b1 = ws.take("x", (2, 7))
        assert ws.take("x", (3, 3)) is a1
        assert ws.take("x", (2, 7)) is b1

    def test_order_is_part_of_the_key(self):
        ws = Workspace()
        f = ws.take("x", (3, 4), order="F")
        c = ws.take("x", (3, 4), order="C")
        assert f.flags.f_contiguous and c.flags.c_contiguous
        assert not np.shares_memory(f, c)

    def test_clear_and_nbytes(self):
        ws = Workspace()
        ws.take("x", (10, 10))
        assert ws.nbytes() == 800
        ws.clear()
        assert ws.nbytes() == 0

    def test_per_thread_arenas(self):
        arenas = []

        def grab():
            arenas.append(get_workspace())

        t = threading.Thread(target=grab)
        t.start()
        t.join()
        assert arenas[0] is not get_workspace()


# --------------------------------------------------- fast vs reference solves
def _random_problem(rng, p=10):
    coords = rng.normal(0, 2, (p, 3))
    constraints = [
        PositionConstraint(0, coords[0], 0.02),
        PositionConstraint(p - 1, coords[p - 1], 0.02),
    ]
    for _ in range(3 * p):
        i, j = rng.choice(p, size=2, replace=False)
        d = float(np.linalg.norm(coords[i] - coords[j]))
        constraints.append(DistanceConstraint(int(i), int(j), d, 0.05))
    grp = (1, 2)
    a = rng.normal(0, 1, (2, 6))
    constraints.append(
        LinearConstraint(grp, a, a @ coords[list(grp)].ravel(), np.array([0.1, 0.1]))
    )
    cov = _spd(rng, 3 * p)
    estimate = StructureEstimate(
        (coords + rng.normal(0, 0.3, coords.shape)).ravel(), cov
    )
    return estimate, constraints


def _run_flat(estimate, constraints, impl, **kwargs):
    options = UpdateOptions(kernel_impl=impl, **kwargs)
    est = estimate
    for batch in make_batches(constraints, 8):
        est = apply_batch(est, batch, options=options)
    return est


class TestFastMatchesReference:
    def test_invalid_impl_rejected(self, square_estimate, square_constraints):
        batch = make_batches(square_constraints, 8)[0]
        with pytest.raises(DimensionError, match="kernel_impl"):
            apply_batch(
                square_estimate, batch, options=UpdateOptions(kernel_impl="wat")
            )
        assert KERNEL_IMPLS == ("fast", "reference", "vector")

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_spd_problems(self, seed):
        rng = np.random.default_rng(seed)
        estimate, constraints = _random_problem(rng)
        ref = _run_flat(estimate, constraints, "reference")
        fast = _run_flat(estimate, constraints, "fast")
        assert np.allclose(fast.mean, ref.mean, rtol=RTOL, atol=ATOL)
        assert np.allclose(fast.covariance, ref.covariance, rtol=RTOL, atol=ATOL)

    def test_joseph_branch(self, rng):
        estimate, constraints = _random_problem(rng)
        ref = _run_flat(estimate, constraints, "reference", joseph=True)
        fast = _run_flat(estimate, constraints, "fast", joseph=True)
        assert np.allclose(fast.covariance, ref.covariance, rtol=RTOL, atol=ATOL)

    def test_local_iterations(self, rng):
        estimate, constraints = _random_problem(rng)
        ref = _run_flat(estimate, constraints, "reference", local_iterations=3)
        fast = _run_flat(estimate, constraints, "fast", local_iterations=3)
        assert np.allclose(fast.mean, ref.mean, rtol=RTOL, atol=ATOL)

    def test_fast_posterior_is_exactly_symmetric(self, rng):
        estimate, constraints = _random_problem(rng)
        fast = _run_flat(estimate, constraints, "fast")
        assert (fast.covariance == fast.covariance.T).all()

    def test_posterior_does_not_alias_workspace(self, rng):
        """A returned posterior must survive later batches untouched."""
        estimate, constraints = _random_problem(rng)
        batches = make_batches(constraints, 8)
        first = apply_batch(estimate, batches[0], options=UpdateOptions())
        snapshot = first.covariance.copy()
        apply_batch(first, batches[1], options=UpdateOptions())
        assert (first.covariance == snapshot).all()

    def test_helix_hierarchical_solve(self, helix2_problem):
        est = helix2_problem.initial_estimate(0)
        ref = HierarchicalSolver(
            helix2_problem.hierarchy,
            batch_size=16,
            options=UpdateOptions(kernel_impl="reference"),
        ).run_cycle(est)
        fast = HierarchicalSolver(
            helix2_problem.hierarchy,
            batch_size=16,
            options=UpdateOptions(kernel_impl="fast"),
        ).run_cycle(est)
        assert np.allclose(
            fast.estimate.mean, ref.estimate.mean, rtol=RTOL, atol=SOLVE_ATOL
        )
        assert np.allclose(
            fast.estimate.covariance,
            ref.estimate.covariance,
            rtol=RTOL,
            atol=SOLVE_ATOL,
        )

    def test_reference_impl_is_deterministic(self, helix2_problem):
        est = helix2_problem.initial_estimate(0)
        opts = UpdateOptions(kernel_impl="reference")
        a = HierarchicalSolver(
            helix2_problem.hierarchy, batch_size=16, options=opts
        ).run_cycle(est)
        b = HierarchicalSolver(
            helix2_problem.hierarchy, batch_size=16, options=opts
        ).run_cycle(est)
        assert np.array_equal(a.estimate.mean, b.estimate.mean)
        assert np.array_equal(a.estimate.covariance, b.estimate.covariance)

    @pytest.mark.parametrize("backend", sorted(EXECUTORS))
    @pytest.mark.parametrize("impl", KERNEL_IMPLS)
    def test_all_backends_match_serial_reference(
        self, helix2_problem, backend, impl
    ):
        est = helix2_problem.initial_estimate(0)
        ref = HierarchicalSolver(
            helix2_problem.hierarchy,
            batch_size=16,
            options=UpdateOptions(kernel_impl="reference"),
        ).run_cycle(est)
        with EXECUTORS[backend]() as ex:
            par = ParallelHierarchicalSolver(
                helix2_problem.hierarchy,
                batch_size=16,
                options=UpdateOptions(kernel_impl=impl),
                executor=ex,
            ).run_cycle(est)
        assert np.allclose(
            par.estimate.mean, ref.estimate.mean, rtol=RTOL, atol=SOLVE_ATOL
        )
        assert np.allclose(
            par.estimate.covariance,
            ref.estimate.covariance,
            rtol=RTOL,
            atol=SOLVE_ATOL,
        )
        if impl == "reference":
            # same kernels, same order: bitwise, not just close
            assert np.array_equal(par.estimate.mean, ref.estimate.mean)

def _mixed_problem(rng, p=8):
    """A chain touching every group-protocol type plus scalar fallbacks."""
    coords = rng.normal(0, 2, (p, 3))
    constraints = [PositionConstraint(0, coords[0], 0.02)]
    for i in range(p - 1):
        d = float(np.linalg.norm(coords[i] - coords[i + 1]))
        constraints.append(DistanceConstraint(i, i + 1, d, 0.05))
    for i in range(p - 2):
        u = coords[i] - coords[i + 1]
        v = coords[i + 2] - coords[i + 1]
        ang = float(
            np.arccos(
                np.clip(u @ v / (np.linalg.norm(u) * np.linalg.norm(v)), -1, 1)
            )
        )
        constraints.append(AngleConstraint(i, i + 1, i + 2, ang, 0.05))
    for i in range(p - 3):
        constraints.append(TorsionConstraint(i, i + 1, i + 2, i + 3, 0.3, 0.1))
    constraints.append(DistanceBoundConstraint(0, p - 1, 1.0, None, 0.2))
    constraints.append(DistanceBoundConstraint(1, p - 2, None, 2.0, 0.2))
    grp = (2, 4)
    a = rng.normal(0, 1, (2, 6))
    constraints.append(
        LinearConstraint(grp, a, a @ coords[list(grp)].ravel(), np.array([0.1, 0.1]))
    )
    cov = _spd(rng, 3 * p)
    estimate = StructureEstimate(
        (coords + rng.normal(0, 0.2, coords.shape)).ravel(), cov
    )
    return estimate, constraints


class TestVectorMatchesFastAndReference:
    """Three-way harness: planned assembly must change nothing but time."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_spd_problems(self, seed):
        rng = np.random.default_rng(seed)
        estimate, constraints = _random_problem(rng)
        ref = _run_flat(estimate, constraints, "reference")
        fast = _run_flat(estimate, constraints, "fast")
        vec = _run_flat(estimate, constraints, "vector")
        for other in (ref, fast):
            assert np.allclose(vec.mean, other.mean, rtol=RTOL, atol=ATOL)
            assert np.allclose(
                vec.covariance, other.covariance, rtol=RTOL, atol=ATOL
            )

    @pytest.mark.parametrize("seed", [0, 1])
    def test_mixed_constraint_types(self, seed):
        rng = np.random.default_rng(seed)
        estimate, constraints = _mixed_problem(rng)
        ref = _run_flat(estimate, constraints, "reference")
        vec = _run_flat(estimate, constraints, "vector")
        assert np.allclose(vec.mean, ref.mean, rtol=RTOL, atol=ATOL)
        assert np.allclose(vec.covariance, ref.covariance, rtol=RTOL, atol=ATOL)

    def test_joseph_branch(self, rng):
        estimate, constraints = _random_problem(rng)
        fast = _run_flat(estimate, constraints, "fast", joseph=True)
        vec = _run_flat(estimate, constraints, "vector", joseph=True)
        assert np.allclose(vec.covariance, fast.covariance, rtol=RTOL, atol=ATOL)

    def test_local_iterations_relinearize_through_the_plan(self, rng):
        estimate, constraints = _random_problem(rng)
        fast = _run_flat(estimate, constraints, "fast", local_iterations=3)
        vec = _run_flat(estimate, constraints, "vector", local_iterations=3)
        assert np.allclose(vec.mean, fast.mean, rtol=RTOL, atol=ATOL)

    def test_vector_posterior_does_not_alias_workspace(self, rng):
        estimate, constraints = _random_problem(rng)
        batches = make_batches(constraints, 8)
        opts = UpdateOptions(kernel_impl="vector")
        first = apply_batch(estimate, batches[0], options=opts)
        snapshot = first.covariance.copy()
        apply_batch(first, batches[1], options=opts)
        assert (first.covariance == snapshot).all()

    def test_plan_cache_reused_across_solves(self, rng):
        """Re-solving the same constraints must hit, not rebuild, plans."""
        estimate, constraints = _random_problem(rng)
        ws = get_workspace()
        ws.clear()
        ws.plan_builds = ws.plan_hits = 0
        _run_flat(estimate, constraints, "vector")
        builds = ws.plan_builds
        assert builds == len(make_batches(constraints, 8))
        assert ws.plan_hits == 0
        _run_flat(estimate, constraints, "vector")
        assert ws.plan_builds == builds
        assert ws.plan_hits == builds

    def test_helix_hierarchical_solve(self, helix2_problem):
        est = helix2_problem.initial_estimate(0)
        ref = HierarchicalSolver(
            helix2_problem.hierarchy,
            batch_size=16,
            options=UpdateOptions(kernel_impl="reference"),
        ).run_cycle(est)
        vec = HierarchicalSolver(
            helix2_problem.hierarchy,
            batch_size=16,
            options=UpdateOptions(kernel_impl="vector"),
        ).run_cycle(est)
        assert np.allclose(
            vec.estimate.mean, ref.estimate.mean, rtol=RTOL, atol=SOLVE_ATOL
        )
        assert np.allclose(
            vec.estimate.covariance,
            ref.estimate.covariance,
            rtol=RTOL,
            atol=SOLVE_ATOL,
        )

    @pytest.mark.parametrize("seed", [0, 3, 7])
    def test_fuzzed_vector_identity(self, seed):
        from repro.scenarios import generate_scenario
        from repro.scenarios.invariants import check_vector_identity

        result = check_vector_identity(generate_scenario(seed))
        assert result.ok, result.detail


class TestConsumeEstimate:
    """``consume_estimate`` recycles dead intermediates bitwise-identically.

    Solver batch loops pass ``consume_estimate=True`` for their own
    intermediates so the covariance downdate runs in place instead of
    copying the full n×n prior first.  The arithmetic is the same dsyrk
    on the same values, so the posterior must be bitwise equal to the
    copying path — and the flag must stay advisory for the pinned
    reference tier.
    """

    @pytest.mark.parametrize("impl", ["fast", "vector"])
    def test_consumed_chain_bitwise_equals_copying_chain(self, rng, impl):
        estimate, constraints = _random_problem(rng)
        batches = make_batches(constraints, 8)
        opts = UpdateOptions(kernel_impl=impl)
        mid_a = apply_batch(estimate, batches[0], options=opts)
        out_a = apply_batch(mid_a, batches[1], options=opts)
        mid_b = apply_batch(estimate, batches[0], options=opts)
        out_b = apply_batch(
            mid_b, batches[1], options=opts, consume_estimate=True
        )
        assert (out_a.mean == out_b.mean).all()
        assert (out_a.covariance == out_b.covariance).all()
        # The consumed intermediate's buffer was recycled as the posterior.
        assert out_b.covariance is mid_b.covariance

    def test_reference_tier_ignores_the_flag(self, rng):
        estimate, constraints = _random_problem(rng)
        batches = make_batches(constraints, 8)
        opts = UpdateOptions(kernel_impl="reference")
        mid = apply_batch(estimate, batches[0], options=opts)
        snapshot = mid.covariance.copy()
        out = apply_batch(mid, batches[1], options=opts, consume_estimate=True)
        assert (mid.covariance == snapshot).all()
        assert out.covariance is not mid.covariance

    @pytest.mark.parametrize("impl", ["fast", "vector"])
    def test_default_still_preserves_the_input(self, rng, impl):
        estimate, constraints = _random_problem(rng)
        batches = make_batches(constraints, 8)
        opts = UpdateOptions(kernel_impl=impl)
        mid = apply_batch(estimate, batches[0], options=opts)
        snapshot = mid.covariance.copy()
        apply_batch(mid, batches[1], options=opts)
        assert (mid.covariance == snapshot).all()

    @pytest.mark.parametrize("impl", ["fast", "vector"])
    def test_local_iterations_consume_their_own_intermediates(self, rng, impl):
        """Iterations ≥2 own the running covariance even without the flag."""
        estimate, constraints = _random_problem(rng)
        batches = make_batches(constraints, 8)
        one = UpdateOptions(kernel_impl=impl, local_iterations=3)
        snapshot = estimate.covariance.copy()
        out = apply_batch(estimate, batches[0], options=one)
        assert (estimate.covariance == snapshot).all()
        assert np.all(np.isfinite(out.covariance))


class TestFastMatchesReferenceFuzzShapes:
    """Fast-vs-reference agreement over fuzzer-generated shapes.

    The hand-built problems above are all even-dimensioned, batch-16 and
    dense-support; the scenario generator covers the shapes they miss —
    odd state dims, rank-1 (single-row) batches, tiny leaf-only pools —
    on every topology family.
    """

    @pytest.mark.parametrize("seed", [0, 2, 4, 6, 8])
    def test_fuzzed_scenario_agrees(self, seed):
        from repro.scenarios import generate_scenario
        from repro.scenarios.invariants import check_fast_vs_reference

        result = check_fast_vs_reference(generate_scenario(seed))
        assert result.ok, result.detail

    @pytest.mark.parametrize("n_atoms", [5, 7, 13])
    def test_odd_state_dims(self, n_atoms):
        from dataclasses import replace

        from repro.scenarios import build_scenario, spec_from_seed
        from repro.scenarios.invariants import check_fast_vs_reference

        spec = replace(spec_from_seed(1), n_atoms=n_atoms, faults=None)
        result = check_fast_vs_reference(build_scenario(spec))
        assert result.ok, result.detail

    def test_rank_one_batches(self):
        """batch_size=1 exercises the m=1 corner of every kernel."""
        from dataclasses import replace

        from repro.scenarios import build_scenario, spec_from_seed
        from repro.scenarios.invariants import check_fast_vs_reference

        spec = replace(spec_from_seed(2), batch_size=1, faults=None)
        result = check_fast_vs_reference(build_scenario(spec))
        assert result.ok, result.detail

    def test_empty_support_constraint(self, rng):
        """An all-zero linear constraint has an empty column support; the
        gathered-GEMM branch must handle s=0 like the reference path."""
        estimate, constraints = _random_problem(rng, p=5)
        constraints.append(
            LinearConstraint(
                (0, 3), np.zeros((2, 6)), np.zeros(2), np.array([0.5, 0.5])
            )
        )
        ref = _run_flat(estimate, constraints, "reference")
        fast = _run_flat(estimate, constraints, "fast")
        assert np.allclose(fast.mean, ref.mean, rtol=RTOL, atol=ATOL)
        assert np.allclose(fast.covariance, ref.covariance, rtol=RTOL, atol=ATOL)

    def test_leaf_only_tiny_pool(self):
        from dataclasses import replace

        from repro.scenarios import build_scenario, spec_from_seed
        from repro.scenarios.invariants import check_fast_vs_reference

        spec = replace(
            spec_from_seed(3), topology="chain", leaf_only=True, faults=None
        )
        result = check_fast_vs_reference(build_scenario(spec))
        assert result.ok, result.detail


class TestDispatchModes:
    @pytest.mark.parametrize("dispatch", ["dependency", "wavefront"])
    def test_dispatch_modes_match_serial(self, helix2_problem, dispatch):
        est = helix2_problem.initial_estimate(0)
        serial = HierarchicalSolver(
            helix2_problem.hierarchy, batch_size=16
        ).run_cycle(est)
        with ThreadExecutor(4) as ex:
            par = ParallelHierarchicalSolver(
                helix2_problem.hierarchy,
                batch_size=16,
                executor=ex,
                dispatch=dispatch,
            ).run_cycle(est)
        assert np.array_equal(serial.estimate.mean, par.estimate.mean)
        assert np.array_equal(serial.estimate.covariance, par.estimate.covariance)
