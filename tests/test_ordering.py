"""Tests for constraint-ordering strategies."""

import pytest

from repro.core.ordering import STRATEGIES, order_constraints
from repro.errors import HierarchyError


class TestOrderConstraints:
    def test_given_unchanged(self, helix2_problem):
        cons = helix2_problem.constraints
        assert order_constraints(cons, "given") == cons

    def test_random_is_permutation(self, helix2_problem):
        cons = helix2_problem.constraints
        shuffled = order_constraints(cons, "random", seed=1)
        assert shuffled != cons
        assert sorted(map(id, shuffled)) == sorted(map(id, cons))

    def test_random_seeded_deterministic(self, helix2_problem):
        cons = helix2_problem.constraints
        a = order_constraints(cons, "random", seed=5)
        b = order_constraints(cons, "random", seed=5)
        assert list(map(id, a)) == list(map(id, b))

    def test_locality_is_permutation(self, helix2_problem):
        p = helix2_problem
        ordered = order_constraints(p.constraints, "locality", p.hierarchy)
        assert sorted(map(id, ordered)) == sorted(map(id, p.constraints))

    def test_locality_groups_by_postorder_node(self, helix2_problem):
        p = helix2_problem
        ordered = order_constraints(p.constraints, "locality", p.hierarchy)
        node_of = {}
        for node in p.hierarchy.nodes:
            for c in node.constraints:
                node_of[id(c)] = node.nid
        post = [n.nid for n in p.hierarchy.post_order()]
        rank = {nid: i for i, nid in enumerate(post)}
        ranks = [rank[node_of[id(c)]] for c in ordered]
        assert ranks == sorted(ranks)

    def test_anti_locality_reverses(self, helix2_problem):
        p = helix2_problem
        loc = order_constraints(p.constraints, "locality", p.hierarchy)
        anti = order_constraints(p.constraints, "anti-locality", p.hierarchy)
        assert list(map(id, anti)) == list(map(id, reversed(loc)))

    def test_locality_requires_hierarchy(self, helix2_problem):
        with pytest.raises(HierarchyError, match="requires"):
            order_constraints(helix2_problem.constraints, "locality")

    def test_unknown_strategy(self, helix2_problem):
        with pytest.raises(HierarchyError, match="unknown"):
            order_constraints(helix2_problem.constraints, "sorted")

    def test_strategy_list_complete(self):
        assert set(STRATEGIES) == {"given", "random", "locality", "anti-locality"}

    @pytest.mark.parametrize("strategy", ["given", "random", "locality"])
    def test_batching_preserves_strategy_order(self, helix2_problem, strategy):
        """The ordering ablation feeds ordered lists straight into
        make_batches; its default must stay order-preserving (the opt-in
        ``group_by_type=True`` regrouping would silently undo the study's
        independent variable)."""
        from repro.constraints.batch import make_batches

        p = helix2_problem
        ordered = order_constraints(p.constraints, strategy, p.hierarchy, seed=3)
        flat = [c for b in make_batches(ordered, 16) for c in b.constraints]
        assert list(map(id, flat)) == list(map(id, ordered))
