"""Tests for the repro.obs observability layer.

Covers: span nesting and contextvar scoping, metric registry semantics
and cross-process merge, the Chrome trace-event exporter and its schema
validator, the kernel → batch → node → cycle attribution chain on a
real solve, fault/retry/checkpoint annotations, the bitwise-identity
guarantee when tracing is off vs on, and the CLI surface
(``--trace`` / ``--metrics-out`` / ``--obs-summary`` / ``--out``
summary sidecar).
"""

import json

import numpy as np
import pytest

from repro import obs
from repro.cli import main
from repro.core.hier_solver import HierarchicalSolver
from repro.faults import FaultConfig, FaultInjector, fault_injection
from repro.faults.checkpoint import CheckpointManager
from repro.linalg.kernels import gemm
from repro.util.timer import Timer, WallClock, set_wall_clock, wall_clock


class FakeClock(WallClock):
    def __init__(self):
        self.t = 0.0

    def now(self):
        return self.t


class TestTracer:
    def test_inactive_by_default(self):
        assert obs.current_tracer() is None
        with obs.span("anything") as sp:
            assert sp is None  # no-op context yields None
        obs.instant("nothing")  # must not raise

    def test_span_nesting_and_attrs(self):
        tracer = obs.Tracer(clock=FakeClock())
        with obs.tracing(tracer):
            with obs.span("outer", cat="solve", level=1) as outer:
                with obs.span("inner", cat="update") as inner:
                    inner.attrs["late"] = 42
                assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert outer.attrs == {"level": 1}
        assert inner.attrs["late"] == 42
        assert [sp.name for sp in tracer.spans] == ["inner", "outer"]

    def test_span_committed_on_exception(self):
        tracer = obs.Tracer()
        with pytest.raises(RuntimeError):
            with obs.tracing(tracer):
                with obs.span("failing"):
                    raise RuntimeError("boom")
        assert tracer.find(name="failing")
        sp = tracer.find(name="failing")[0]
        assert sp.end >= sp.start

    def test_tracing_scope_restores(self):
        tracer = obs.Tracer()
        with obs.tracing(tracer):
            assert obs.current_tracer() is tracer
        assert obs.current_tracer() is None

    def test_nested_tracer_shadows_and_does_not_inherit_parent(self):
        outer_tr, inner_tr = obs.Tracer(), obs.Tracer()
        with obs.tracing(outer_tr), obs.span("outer"):
            with obs.tracing(inner_tr):
                with obs.span("shadowed") as sp:
                    pass
        assert sp.parent_id is None  # parent context reset per tracer
        assert [s.name for s in inner_tr.spans] == ["shadowed"]
        assert [s.name for s in outer_tr.spans] == ["outer"]

    def test_instant_records_parent(self):
        tracer = obs.Tracer()
        with obs.tracing(tracer):
            with obs.span("region") as sp:
                obs.instant("mark", cat="fault", detail=1)
        ev = tracer.instants[0]
        assert ev.name == "mark" and ev.parent_id == sp.span_id
        assert ev.attrs == {"detail": 1}

    def test_clock_injection(self):
        clock = FakeClock()
        tracer = obs.Tracer(clock=clock)
        with obs.tracing(tracer):
            clock.t = 1.0
            with obs.span("timed"):
                clock.t = 3.5
        sp = tracer.spans[0]
        assert sp.start == 1.0 and sp.end == 3.5 and sp.duration == 2.5

    def test_merge_remaps_reparents_and_rebases(self):
        parent_clock, worker_clock = FakeClock(), FakeClock()
        parent = obs.Tracer(clock=parent_clock)
        worker = obs.Tracer(clock=worker_clock)
        # Simulate differing perf_counter epochs: the worker's clock
        # reads 100 s at the same wall time the parent's reads ~0 s.
        worker.epoch = parent.epoch - 100.0
        with obs.tracing(worker):
            worker_clock.t = 100.0
            with obs.span("wroot") as wroot:
                with obs.span("wchild"):
                    worker_clock.t = 101.0
        with obs.tracing(parent):
            with obs.span("dispatch") as disp:
                parent.merge(worker.payload(), parent_id=disp.span_id)
        by_name = {sp.name: sp for sp in parent.spans}
        root, child = by_name["wroot"], by_name["wchild"]
        assert root.parent_id == disp.span_id  # worker root re-parented
        assert child.parent_id == root.span_id  # internal links preserved
        ids = [sp.span_id for sp in parent.spans]
        assert len(ids) == len(set(ids))  # no id collisions after remap
        assert root.start == pytest.approx(0.0)  # 100 s epoch shift removed
        assert root.end == pytest.approx(1.0)

    def test_merge_empty_payload_is_noop(self):
        tracer = obs.Tracer()
        tracer.merge(None)
        tracer.merge({"epoch": 0.0, "spans": [], "instants": []})
        assert tracer.spans == [] and tracer.instants == []

    def test_ancestry(self):
        tracer = obs.Tracer()
        with obs.tracing(tracer):
            with obs.span("a"), obs.span("b"), obs.span("c"):
                pass
        leaf = tracer.find(name="c")[0]
        assert [s.name for s in tracer.ancestry(leaf)] == ["b", "a"]


class TestMetrics:
    def test_inactive_by_default(self):
        assert obs.current_metrics() is None
        obs.inc("x")
        obs.set_gauge("y", 1.0)
        obs.observe("z", 2.0)  # all no-ops, no raise

    def test_counter_gauge_histogram(self):
        reg = obs.MetricsRegistry()
        with obs.metrics_scope(reg):
            obs.inc("c")
            obs.inc("c", 2.5)
            obs.set_gauge("g", 7.0)
            for v in (1.0, 3.0, 2.0):
                obs.observe("h", v)
        snap = reg.snapshot()
        assert snap["counters"]["c"] == 3.5
        assert snap["gauges"]["g"] == 7.0
        h = snap["histograms"]["h"]
        assert h["count"] == 3 and h["min"] == 1.0 and h["max"] == 3.0
        assert h["mean"] == pytest.approx(2.0)

    def test_record_kernel_totals_and_per_category(self):
        reg = obs.MetricsRegistry()
        reg.record_kernel("m-m", flops=100.0, seconds=0.5)
        reg.record_kernel("m-m", flops=50.0, seconds=0.25)
        reg.record_kernel("vec", flops=1.0, seconds=0.01)
        snap = reg.snapshot()["counters"]
        assert snap["kernel.calls"] == 3
        assert snap["kernel.flops"] == 151.0
        assert snap["kernel.calls.m-m"] == 2
        assert snap["kernel.flops.m-m"] == 150.0
        assert snap["kernel.seconds.vec"] == pytest.approx(0.01)

    def test_merge_snapshot_accumulates(self):
        a, b = obs.MetricsRegistry(), obs.MetricsRegistry()
        a.counter("c").inc(1.0)
        b.counter("c").inc(2.0)
        b.gauge("g").set(5.0)
        a.histogram("h").observe(1.0)
        b.histogram("h").observe(9.0)
        a.merge_snapshot(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"]["c"] == 3.0
        assert snap["gauges"]["g"] == 5.0
        h = snap["histograms"]["h"]
        assert h["count"] == 2 and h["min"] == 1.0 and h["max"] == 9.0
        a.merge_snapshot(None)  # no-op

    def test_scope_restores(self):
        reg = obs.MetricsRegistry()
        with obs.metrics_scope(reg):
            assert obs.current_metrics() is reg
        assert obs.current_metrics() is None


class TestClockUnification:
    def test_kernel_timing_uses_process_clock(self):
        """Satellite: counters/obs timing flows through the injectable clock."""
        clock = FakeClock()
        previous = set_wall_clock(clock)
        try:
            tracer = obs.Tracer()  # picks up the fake process clock
            assert tracer.clock is clock
            with obs.tracing(tracer):
                clock.t = 2.0
                gemm(np.eye(3), np.eye(3))
            sp = tracer.find(cat="kernel")[0]
            # FakeClock never advances inside gemm: a zero-length span
            # stamped at the fake time proves both the kernel timestamps
            # and the tracer read the injected clock.
            assert sp.start == 2.0 and sp.end == 2.0
            assert Timer().clock is clock  # default Timer shares it too
        finally:
            set_wall_clock(previous)
        assert wall_clock() is previous


class TestExporters:
    def _traced_sample(self):
        tracer = obs.Tracer()
        reg = obs.MetricsRegistry()
        with obs.tracing(tracer), obs.metrics_scope(reg):
            with obs.span("cycle", cat="solve", cycle=0):
                with obs.span("node[0]", cat="solve", nid=0):
                    gemm(np.eye(4), np.eye(4))
                    obs.instant("update.retry", cat="fault", attempt=0)
        return tracer, reg

    def test_chrome_events_balanced_and_valid(self):
        tracer, _ = self._traced_sample()
        events = obs.chrome_trace_events(tracer)
        assert obs.validate_chrome_trace({"traceEvents": events}) == []
        b = [e for e in events if e["ph"] == "B"]
        e = [e for e in events if e["ph"] == "E"]
        assert len(b) == len(e) == 3  # cycle, node, kernel
        names = [ev["name"] for ev in events if ev["ph"] == "i"]
        assert names == ["update.retry"]
        meta = [ev for ev in events if ev["ph"] == "M"]
        assert {m["args"]["name"] for m in meta} >= {"main"}

    def test_empty_tracer_exports_empty(self):
        assert obs.chrome_trace_events(obs.Tracer()) == []

    def test_write_chrome_trace_document(self, tmp_path):
        tracer, _ = self._traced_sample()
        path = obs.write_chrome_trace(tracer, tmp_path / "t.json")
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert obs.validate_chrome_trace(doc) == []
        stats = obs.trace_stats(doc)
        assert stats["spans"] == 3 and stats["max_depth"] == 3

    def test_write_spans_jsonl(self, tmp_path):
        tracer, _ = self._traced_sample()
        path = obs.write_spans_jsonl(tracer, tmp_path / "s.jsonl")
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(rows) == 5  # meta header + 3 spans + 1 instant
        assert rows[0]["type"] == "meta"
        spans = [r for r in rows if r["type"] == "span"]
        assert {r["name"] for r in spans} == {"cycle", "node[0]", "gemm"}
        starts = [r.get("start", r.get("ts")) for r in rows[1:]]
        assert starts == sorted(starts)

    def test_write_metrics_json(self, tmp_path):
        _, reg = self._traced_sample()
        path = obs.write_metrics_json(reg, tmp_path / "m.json", extra={"run": "x"})
        doc = json.loads(path.read_text())
        assert doc["counters"]["kernel.calls"] == 1
        assert doc["run"] == {"run": "x"}

    def test_format_summary(self):
        tracer, reg = self._traced_sample()
        text = obs.format_obs_summary(tracer, reg)
        assert "host kernel time by category" in text
        assert "m-m" in text  # gemm's category row
        assert "update.retry" in text  # annotation counts
        assert "kernel.flops" in text

    def test_format_summary_empty(self):
        assert "no observability data" in obs.format_obs_summary(None, None)


class TestValidator:
    def test_detects_unbalanced_begin(self):
        doc = {"traceEvents": [
            {"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 1},
        ]}
        problems = obs.validate_chrome_trace(doc)
        assert any("never closed" in p for p in problems)

    def test_detects_mismatched_end(self):
        doc = {"traceEvents": [
            {"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 1},
            {"name": "b", "ph": "E", "ts": 1, "pid": 1, "tid": 1},
        ]}
        assert obs.validate_chrome_trace(doc)

    def test_detects_unknown_phase_and_bad_ts(self):
        doc = {"traceEvents": [
            {"name": "a", "ph": "Q", "ts": 0, "pid": 1, "tid": 1},
            {"name": "b", "ph": "B", "ts": -5, "pid": 1, "tid": 1},
            {"name": "b", "ph": "E", "ts": -1, "pid": 1, "tid": 1},
        ]}
        problems = obs.validate_chrome_trace(doc)
        assert len(problems) >= 2

    def test_detects_time_going_backwards(self):
        doc = {"traceEvents": [
            {"name": "a", "ph": "B", "ts": 10, "pid": 1, "tid": 1},
            {"name": "a", "ph": "E", "ts": 5, "pid": 1, "tid": 1},
        ]}
        assert any("decreases" in p for p in obs.validate_chrome_trace(doc))


class TestSolveTracing:
    def test_traced_solve_bitwise_identical(self, helix2_problem):
        est = helix2_problem.initial_estimate(0)
        solver = HierarchicalSolver(helix2_problem.hierarchy, 16)
        clean = solver.run_cycle(est)
        with obs.tracing(obs.Tracer()), obs.metrics_scope(obs.MetricsRegistry()):
            traced = solver.run_cycle(est)
        assert np.array_equal(clean.estimate.mean, traced.estimate.mean)
        assert np.array_equal(clean.estimate.covariance, traced.estimate.covariance)

    def test_nesting_chain_kernel_to_cycle(self, helix2_problem):
        tracer = obs.Tracer()
        with obs.tracing(tracer):
            HierarchicalSolver(helix2_problem.hierarchy, 16).run_cycle(
                helix2_problem.initial_estimate(0)
            )
        kernel = tracer.find(cat="kernel")
        assert kernel
        chain = [s.name for s in tracer.ancestry(kernel[0])]
        assert chain[0] == "batch"
        assert chain[1].startswith("node[")
        assert chain[-1] == "cycle"
        # every node of the hierarchy produced a span
        node_spans = [s for s in tracer.spans if s.name.startswith("node[")]
        assert len(node_spans) == len(helix2_problem.hierarchy.nodes)
        # exported trace passes the schema check at full depth
        doc = {"traceEvents": obs.chrome_trace_events(tracer)}
        assert obs.validate_chrome_trace(doc) == []
        assert obs.trace_stats(doc)["max_depth"] >= 4

    def test_solve_metrics(self, helix2_problem):
        reg = obs.MetricsRegistry()
        with obs.metrics_scope(reg):
            HierarchicalSolver(helix2_problem.hierarchy, 16).run_cycle(
                helix2_problem.initial_estimate(0)
            )
        snap = reg.snapshot()["counters"]
        assert snap["solve.cycles"] == 1
        assert snap["kernel.calls"] > 0
        assert snap["kernel.flops"] > 0
        assert set(snap) >= {"kernel.calls.chol", "kernel.calls.m-m"}

    def test_fault_retries_become_instants_and_metrics(self, helix2_problem):
        tracer, reg = obs.Tracer(), obs.MetricsRegistry()
        inj = FaultInjector(FaultConfig(chol_p=0.2, seed=3))
        with fault_injection(inj), obs.tracing(tracer), obs.metrics_scope(reg):
            HierarchicalSolver(helix2_problem.hierarchy, 16).run_cycle(
                helix2_problem.initial_estimate(0)
            )
        assert inj.injected["chol"] > 0  # the schedule actually fired
        snap = reg.snapshot()["counters"]
        assert snap["faults.injected.chol"] == inj.injected["chol"]
        assert snap["update.retry_total"] >= inj.injected["chol"]
        assert snap["update.retry_recovered"] > 0
        retries = [ev for ev in tracer.instants if ev.name == "update.retry"]
        assert len(retries) == snap["update.retry_total"]
        assert all(ev.cat == "fault" for ev in retries)
        injected = [ev for ev in tracer.instants if ev.name == "fault.injected"]
        assert len(injected) == inj.injected["chol"]

    def test_checkpoint_spans_and_metrics(self, helix2_problem, tmp_path):
        tracer, reg = obs.Tracer(), obs.MetricsRegistry()
        manager = CheckpointManager(tmp_path / "ckpt")
        solver = HierarchicalSolver(
            helix2_problem.hierarchy, 16, checkpoint=manager
        )
        with obs.tracing(tracer), obs.metrics_scope(reg):
            solver.run_cycle(helix2_problem.initial_estimate(0))
        saves = tracer.find(name="checkpoint.save_node", cat="checkpoint")
        assert len(saves) == len(helix2_problem.hierarchy.nodes)
        assert all("nid" in sp.attrs for sp in saves)
        snap = reg.snapshot()["counters"]
        assert snap["checkpoint.nodes_saved"] == len(saves)


class TestCLIObservability:
    @pytest.fixture
    def helix_file(self, tmp_path):
        path = tmp_path / "helix2.npz"
        assert main(["generate", "helix", "--length", "2", "--out", str(path)]) == 0
        return path

    def test_trace_metrics_summary_flags(self, helix_file, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        code = main([
            "solve", str(helix_file), "--cycles", "1",
            "--trace", str(trace), "--metrics-out", str(metrics),
            "--obs-summary",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "host kernel time by category" in out
        doc = json.loads(trace.read_text())
        assert obs.validate_chrome_trace(doc) == []
        assert obs.trace_stats(doc)["max_depth"] >= 4
        counters = json.loads(metrics.read_text())["counters"]
        assert counters["solve.cycles"] == 1

    def test_trace_jsonl_variant(self, helix_file, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert main([
            "solve", str(helix_file), "--cycles", "1", "--trace", str(trace),
        ]) == 0
        rows = [json.loads(line) for line in trace.read_text().splitlines()]
        assert any(r.get("name") == "cycle" for r in rows)
        assert rows[0]["type"] == "meta"  # self-cost header row leads

    def test_out_summary_sidecar(self, helix_file, tmp_path, capsys):
        est = tmp_path / "solved.npz"
        trace = tmp_path / "trace.json"
        code = main([
            "solve", str(helix_file), "--cycles", "1",
            "--trace", str(trace), "--out", str(est),
        ])
        assert code == 0
        assert "wrote summary to" in capsys.readouterr().out
        summary = json.loads((tmp_path / "solved.summary.json").read_text())
        assert summary["problem"] == "helix2"
        rob = summary["robustness"]
        assert {"retried_batch_updates", "recovered_batch_updates",
                "quarantined_batches", "quarantined_constraints",
                "quarantined_rows"} <= set(rob)
        assert summary["artifacts"]["trace"] == str(trace)
        assert summary["artifacts"]["estimate"] == str(est)

    def test_summary_counts_faulted_retries(self, helix_file, tmp_path):
        est = tmp_path / "solved.npz"
        code = main([
            "solve", str(helix_file), "--cycles", "1",
            "--faults", "chol=0.2,seed=3", "--out", str(est),
        ])
        assert code == 0
        summary = json.loads((tmp_path / "solved.summary.json").read_text())
        assert summary["robustness"]["retried_batch_updates"] > 0
        assert summary["faults_injected"]["chol"] > 0
        assert summary["artifacts"]["trace"] is None


class TickClock(WallClock):
    """Advances by one second on every now() call: each clock read is
    visible as exactly 1s of accounted time."""

    def __init__(self):
        self.t = -1.0

    def now(self):
        self.t += 1.0
        return self.t


class TestOverheadAccounting:
    def test_span_bookkeeping_excluded_and_accounted(self):
        tracer = obs.Tracer(clock=TickClock())
        # Tracer.__init__ consumed tick 0 for the epoch; span() then
        # reads t_open=1, sp.start=2, sp.end=3, exit bookkeeping=4
        with tracer.span("work") as sp:
            pass
        assert (sp.start, sp.end) == (2.0, 3.0)
        assert tracer.overhead_seconds == 2.0  # enter tick + exit tick

    def test_complete_and_instant_account_record_cost(self):
        tracer = obs.Tracer(clock=TickClock())
        tracer.complete("k", "kernel", 10.0, 11.0)
        assert tracer.overhead_seconds == 1.0
        tracer.instant("mark")
        assert tracer.overhead_seconds == 2.0

    def test_payload_merge_accumulates_worker_overhead(self):
        parent, worker = obs.Tracer(clock=FakeClock()), obs.Tracer(clock=FakeClock())
        with worker.span("task"):
            pass
        worker.overhead_seconds = 0.25
        parent.overhead_seconds = 0.5
        parent.merge(worker.payload())
        assert parent.overhead_seconds == 0.75

    def test_jsonl_round_trip_preserves_overhead(self, tmp_path):
        tracer = obs.Tracer(clock=FakeClock())
        with tracer.span("a"):
            pass
        tracer.overhead_seconds = 0.125
        path = tmp_path / "t.jsonl"
        obs.write_spans_jsonl(tracer, path)
        loaded = obs.read_spans_jsonl(path)
        assert loaded.overhead_seconds == 0.125
        # export time is added to the live tracer only after the file is
        # written, so re-exporting the loaded tracer is byte-exact
        second = tmp_path / "t2.jsonl"
        obs.write_spans_jsonl(loaded, second)
        assert path.read_bytes() == second.read_bytes()

    def test_chrome_round_trip_preserves_overhead(self, tmp_path):
        tracer = obs.Tracer(clock=FakeClock())
        with tracer.span("a"):
            pass
        tracer.overhead_seconds = 0.25
        path = tmp_path / "t.json"
        obs.write_chrome_trace(tracer, path)
        doc = json.loads(path.read_text())
        assert doc["otherData"]["obs_overhead_seconds"] == 0.25
        assert obs.read_chrome_trace(path).overhead_seconds == 0.25

    def test_tracing_exit_publishes_gauge(self):
        registry = obs.MetricsRegistry()
        tracer = obs.Tracer(clock=TickClock())
        # metrics scope must wrap tracing: the gauge is published on
        # tracing() exit into whatever metrics scope is still active
        with obs.metrics_scope(registry), obs.tracing(tracer):
            with obs.span("work"):
                pass
        snap = registry.snapshot()
        assert snap["gauges"]["obs.overhead_seconds"] == tracer.overhead_seconds
        assert tracer.overhead_seconds > 0

    def test_no_metrics_scope_is_fine(self):
        tracer = obs.Tracer(clock=FakeClock())
        with obs.tracing(tracer):
            with obs.span("work"):
                pass  # exit must not raise without a metrics scope
