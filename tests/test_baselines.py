"""Tests for the §6 related-work baselines (distance geometry, energy min)."""

import numpy as np
import pytest

from repro.baselines.distance_geometry import (
    bounds_from_constraints,
    embed_distances,
    triangle_smooth,
)
from repro.baselines.energy_minimization import energy_and_gradient, minimize_energy
from repro.constraints import DistanceBoundConstraint, DistanceConstraint, PositionConstraint
from repro.errors import DimensionError
from repro.molecules.rna import build_helix
from repro.molecules.superpose import superposed_rmsd


@pytest.fixture(scope="module")
def helix1():
    p = build_helix(1)
    p.assign()
    return p


class TestBounds:
    def test_exact_distance_becomes_band(self):
        cons = [DistanceConstraint(0, 1, 2.0, 0.01)]  # sigma 0.1
        lo, hi = bounds_from_constraints(4, cons)
        assert lo[0, 1] == pytest.approx(1.8)
        assert hi[0, 1] == pytest.approx(2.2)
        assert lo[1, 0] == lo[0, 1]

    def test_bound_constraint_maps_directly(self):
        cons = [DistanceBoundConstraint(0, 1, 1.5, 4.0, 0.1)]
        lo, hi = bounds_from_constraints(4, cons)
        assert lo[0, 1] == 1.5
        assert hi[0, 1] == 4.0

    def test_unconstrained_pairs_get_defaults(self):
        lo, hi = bounds_from_constraints(3, [DistanceConstraint(0, 1, 2.0, 0.01)])
        assert lo[0, 2] == 1.0
        assert hi[0, 2] > 4.0

    def test_diagonal_zero(self):
        lo, hi = bounds_from_constraints(3, [])
        assert np.all(np.diag(lo) == 0) and np.all(np.diag(hi) == 0)

    def test_non_distance_constraints_ignored(self):
        cons = [PositionConstraint(0, np.zeros(3), 1.0)]
        lo, hi = bounds_from_constraints(3, cons)
        assert hi[0, 1] == hi[0, 2]


class TestTriangleSmoothing:
    def test_upper_bounds_shrink_via_paths(self):
        lo = np.zeros((3, 3))
        hi = np.full((3, 3), 100.0)
        np.fill_diagonal(hi, 0.0)
        hi[0, 1] = hi[1, 0] = 1.0
        hi[1, 2] = hi[2, 1] = 1.0
        lo2, hi2 = triangle_smooth(lo, hi)
        assert hi2[0, 2] <= 2.0

    def test_lower_bounds_rise(self):
        lo = np.zeros((3, 3))
        hi = np.full((3, 3), 100.0)
        np.fill_diagonal(hi, 0.0)
        lo[0, 1] = lo[1, 0] = 10.0
        hi[0, 1] = hi[1, 0] = 10.0
        hi[1, 2] = hi[2, 1] = 2.0
        lo2, hi2 = triangle_smooth(lo, hi)
        # d(0,2) >= d(0,1) - d(1,2) >= 8
        assert lo2[0, 2] >= 8.0 - 1e-9

    def test_intervals_stay_valid(self, helix1):
        lo, hi = bounds_from_constraints(helix1.n_atoms, helix1.constraints)
        lo2, hi2 = triangle_smooth(lo, hi)
        assert np.all(lo2 <= hi2 + 1e-9)


class TestEmbedding:
    def test_recovers_helix_shape_approximately(self, helix1):
        result = embed_distances(helix1.n_atoms, helix1.constraints, seed=0)
        rmsd = superposed_rmsd(result.coords, helix1.true_coords)
        # DG finds the fold family, not a refined structure (its documented
        # role is generating starting structures).
        assert rmsd < 4.0
        assert result.embedding_quality > 0.5

    def test_refinement_improves_bounds(self, helix1):
        raw = embed_distances(helix1.n_atoms, helix1.constraints, seed=0, refine_iterations=0)
        ref = embed_distances(helix1.n_atoms, helix1.constraints, seed=0, refine_iterations=50)
        assert ref.bound_violation <= raw.bound_violation + 1e-9
        assert ref.refined and not raw.refined

    def test_deterministic_per_seed(self, helix1):
        a = embed_distances(helix1.n_atoms, helix1.constraints, seed=4)
        b = embed_distances(helix1.n_atoms, helix1.constraints, seed=4)
        assert np.array_equal(a.coords, b.coords)

    def test_too_few_atoms(self):
        with pytest.raises(DimensionError):
            embed_distances(3, [])


class TestEnergyMinimization:
    def test_gradient_matches_finite_difference(self, rng):
        coords = rng.normal(0, 2, (4, 3))
        cons = [
            DistanceConstraint(0, 1, 2.0, 0.1),
            DistanceConstraint(1, 2, 1.5, 0.2),
            PositionConstraint(3, np.zeros(3), 0.5),
        ]
        _, grad = energy_and_gradient(coords, cons)
        eps = 1e-6
        for a in range(4):
            for k in range(3):
                plus = coords.copy()
                minus = coords.copy()
                plus[a, k] += eps
                minus[a, k] -= eps
                fd = (
                    energy_and_gradient(plus, cons)[0]
                    - energy_and_gradient(minus, cons)[0]
                ) / (2 * eps)
                assert grad[a, k] == pytest.approx(fd, abs=1e-4)

    def test_minimizes_to_zero_energy(self, helix1):
        start = helix1.initial_estimate(0).coords.copy()
        result = minimize_energy(start, helix1.constraints)
        assert result.energy < 1.0  # started in the thousands
        assert result.n_iterations > 0

    def test_recovers_shape(self, helix1):
        start = helix1.initial_estimate(0).coords.copy()
        before = superposed_rmsd(start, helix1.true_coords)
        result = minimize_energy(start, helix1.constraints)
        after = superposed_rmsd(result.coords, helix1.true_coords)
        assert after < 0.5 * before

    def test_validation(self):
        with pytest.raises(DimensionError):
            minimize_energy(np.zeros((2, 2)), [])
        with pytest.raises(DimensionError):
            minimize_energy(np.zeros((2, 3)), [])
