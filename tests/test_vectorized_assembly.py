"""Planned assembly tier: vectorized linearization vs the scalar loop.

Three layers of agreement, each tighter than the solver-level harness in
``test_fast_kernels.py``:

* property-based (hypothesis): each type's ``linearize_many`` matches the
  scalar ``evaluate``/``residual``/``jacobian`` to rtol 1e-12, including
  the degenerate geometries the scalar code special-cases (coincident
  distance pairs, collinear angles/torsions);
* structural: a :class:`~repro.constraints.plan.BatchPlan` produces the
  *same* CSR sparsity (``indptr``/``indices`` equal, not just close) as
  ``assemble_batch`` and scatters values into identical positions;
* lifecycle: plans are cached per constraint identity in the workspace
  arena, survive warm :meth:`~repro.core.session.SolveSession.resolve`
  untouched, and an edit rebuilds exactly the plans whose batch changed.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.constraints import (
    AngleConstraint,
    BatchPlan,
    DistanceBoundConstraint,
    DistanceConstraint,
    LinearConstraint,
    PositionConstraint,
    TorsionConstraint,
)
from repro.constraints.batch import assemble_batch, make_batches
from repro.core.session import SolveSession
from repro.core.update import UpdateOptions
from repro.linalg import get_workspace

RTOL = 1e-12
ATOL = 1e-12

coord_strategy = st.floats(-5.0, 5.0, allow_nan=False, allow_infinity=False)


def coords_array(n):
    return st.lists(
        st.tuples(coord_strategy, coord_strategy, coord_strategy),
        min_size=n,
        max_size=n,
    ).map(lambda rows: np.array(rows, dtype=np.float64))


def _separated(coords, pairs, min_dist=1e-3):
    return all(np.linalg.norm(coords[i] - coords[j]) > min_dist for i, j in pairs)


def _angle_conditioned(coords, i, j, k):
    """arccos amplifies a one-ulp dot-product difference by 1/sin(θ); only
    compare the two paths where the angle itself is well-conditioned.
    (Exactly-degenerate geometry is still tested explicitly below — there
    both paths clip identically.)"""
    u = coords[i] - coords[j]
    v = coords[k] - coords[j]
    nu, nv = np.linalg.norm(u), np.linalg.norm(v)
    if min(nu, nv) < 1e-3:
        return False
    return abs(float(u @ v)) / (nu * nv) < 1.0 - 1e-6


def _torsion_conditioned(coords, i, j, k, l):
    b1 = coords[j] - coords[i]
    b2 = coords[k] - coords[j]
    b3 = coords[l] - coords[k]
    n1 = np.cross(b1, b2)
    n2 = np.cross(b2, b3)
    return min(np.linalg.norm(n1), np.linalg.norm(n2), np.linalg.norm(b2)) > 1e-3


def _assert_group_matches_scalar(ctype, constraints, coords):
    """linearize_many over a pack == the scalar loop, row for row.

    ``atol`` floor: the scalar loop routes dot products through BLAS
    ``ddot`` while the packed path uses ``einsum``, so entries that
    cancel to exactly ±0.0 scalar-side may keep a ~1e-17 rounding
    residue vector-side.  Everything else must agree to rtol 1e-12.
    """
    pack = ctype.pack_group(constraints)
    h, z, jac = ctype.linearize_many(coords, pack)
    row0 = 0
    for c in constraints:
        d = c.dimension
        hv = c.evaluate(coords)
        np.testing.assert_allclose(h[row0 : row0 + d], hv, rtol=RTOL, atol=ATOL)
        np.testing.assert_allclose(
            z[row0 : row0 + d], hv + c.residual(coords), rtol=RTOL, atol=ATOL
        )
        np.testing.assert_allclose(
            jac[row0 : row0 + d].reshape(d, -1),
            c.jacobian(coords),
            rtol=RTOL,
            atol=ATOL,
        )
        row0 += d


class TestLinearizeManyProperties:
    @given(coords_array(4))
    @settings(max_examples=60, deadline=None)
    def test_distance(self, coords):
        assume(_separated(coords, [(0, 1), (2, 3), (0, 3)]))
        cs = [
            DistanceConstraint(0, 1, 1.5, 0.1),
            DistanceConstraint(2, 3, 0.7, 0.2),
            DistanceConstraint(0, 3, 2.5, 0.3),
        ]
        _assert_group_matches_scalar(DistanceConstraint, cs, coords)

    @given(coords_array(4))
    @settings(max_examples=60, deadline=None)
    def test_angle(self, coords):
        assume(_angle_conditioned(coords, 0, 1, 2))
        assume(_angle_conditioned(coords, 1, 2, 3))
        cs = [
            AngleConstraint(0, 1, 2, 1.9, 0.1),
            AngleConstraint(1, 2, 3, 2.1, 0.2),
        ]
        _assert_group_matches_scalar(AngleConstraint, cs, coords)

    @given(coords_array(5))
    @settings(max_examples=60, deadline=None)
    def test_torsion(self, coords):
        assume(_torsion_conditioned(coords, 0, 1, 2, 3))
        assume(_torsion_conditioned(coords, 1, 2, 3, 4))
        cs = [
            TorsionConstraint(0, 1, 2, 3, 0.3, 0.1),
            TorsionConstraint(1, 2, 3, 4, -2.9, 0.2),
        ]
        _assert_group_matches_scalar(TorsionConstraint, cs, coords)

    @given(coords_array(3))
    @settings(max_examples=60, deadline=None)
    def test_position(self, coords):
        cs = [
            PositionConstraint(0, np.array([0.5, -1.0, 2.0]), 0.1),
            PositionConstraint(2, np.array([-3.0, 0.0, 1.0]), 0.2),
        ]
        _assert_group_matches_scalar(PositionConstraint, cs, coords)

    @given(coords_array(4))
    @settings(max_examples=60, deadline=None)
    def test_bounds(self, coords):
        assume(_separated(coords, [(0, 1), (2, 3), (0, 3)]))
        cs = [
            DistanceBoundConstraint(0, 1, 1.0, 4.0, 0.1),
            DistanceBoundConstraint(2, 3, None, 2.0, 0.2),
            DistanceBoundConstraint(0, 3, 0.5, None, 0.3),
        ]
        _assert_group_matches_scalar(DistanceBoundConstraint, cs, coords)

    def test_coincident_distance_pair(self):
        """Both paths fall back to the same arbitrary unit direction."""
        coords = np.array([[1.0, 2.0, 3.0], [1.0, 2.0, 3.0]])
        _assert_group_matches_scalar(
            DistanceConstraint, [DistanceConstraint(0, 1, 1.0, 0.1)], coords
        )

    def test_collinear_angle(self):
        coords = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [2.0, 0.0, 0.0]])
        _assert_group_matches_scalar(
            AngleConstraint, [AngleConstraint(0, 1, 2, 2.0, 0.1)], coords
        )

    def test_collinear_torsion(self):
        coords = np.array(
            [
                [0.0, 0.0, 0.0],
                [1.0, 0.0, 0.0],
                [2.0, 0.0, 0.0],
                [3.0, 1.0, 0.0],
            ]
        )
        _assert_group_matches_scalar(
            TorsionConstraint, [TorsionConstraint(0, 1, 2, 3, 0.5, 0.1)], coords
        )

    def test_bound_exactly_at_the_edge_is_inactive(self):
        """The scalar path uses strict inequalities; so must the pack."""
        coords = np.array([[0.0, 0.0, 0.0], [2.0, 0.0, 0.0]])
        _assert_group_matches_scalar(
            DistanceBoundConstraint,
            [DistanceBoundConstraint(0, 1, 2.0, 2.0, 0.1)],
            coords,
        )


def _chain_constraints(rng, p):
    coords = rng.normal(0, 2, (p, 3))
    cs = [PositionConstraint(0, coords[0], 0.02)]
    for i in range(p - 1):
        d = float(np.linalg.norm(coords[i] - coords[i + 1]))
        cs.append(DistanceConstraint(i, i + 1, d, 0.05))
    for i in range(p - 2):
        cs.append(AngleConstraint(i, i + 1, i + 2, 1.9, 0.05))
    for i in range(p - 3):
        cs.append(TorsionConstraint(i, i + 1, i + 2, i + 3, 0.3, 0.1))
    cs.append(DistanceBoundConstraint(0, p - 1, 1.0, 10.0, 0.2))
    a = rng.normal(0, 1, (2, 6))
    cs.append(
        LinearConstraint((1, 3), a, a @ coords[[1, 3]].ravel(), np.array([0.1, 0.1]))
    )
    return coords, cs


class TestBatchPlanStructure:
    def test_plan_matches_assemble_batch(self, rng):
        coords, cs = _chain_constraints(rng, 9)
        for batch in make_batches(cs, 6):
            z0, h0, big0, r0 = assemble_batch(batch, coords)
            plan = BatchPlan(batch, n_columns=3 * coords.shape[0])
            z, h, big, r, support, h_s = plan.assemble(coords)
            np.testing.assert_array_equal(big.indptr, big0.indptr)
            np.testing.assert_array_equal(big.indices, big0.indices)
            np.testing.assert_allclose(big.data, big0.data, rtol=RTOL, atol=ATOL)
            np.testing.assert_allclose(h, h0, rtol=RTOL, atol=ATOL)
            np.testing.assert_allclose(z, z0, rtol=RTOL, atol=ATOL)
            np.testing.assert_array_equal(r, r0)
            np.testing.assert_array_equal(support, big0.column_support())
            np.testing.assert_allclose(
                h_s,
                big0.restrict_columns(big0.column_support()).to_dense(),
                rtol=RTOL,
                atol=ATOL,
            )

    def test_plan_with_column_map(self, rng):
        coords, cs = _chain_constraints(rng, 7)
        atom_to_column = np.arange(coords.shape[0])[::-1].copy()
        n = 3 * coords.shape[0]
        for batch in make_batches(cs, 5):
            z0, h0, big0, r0 = assemble_batch(batch, coords, atom_to_column, n)
            plan = BatchPlan(batch, atom_to_column=atom_to_column, n_columns=n)
            z, h, big, r, _, _ = plan.assemble(coords)
            np.testing.assert_array_equal(big.indptr, big0.indptr)
            np.testing.assert_array_equal(big.indices, big0.indices)
            np.testing.assert_allclose(big.data, big0.data, rtol=RTOL, atol=ATOL)

    def test_relinearization_rewrites_only_data(self, rng):
        coords, cs = _chain_constraints(rng, 8)
        batch = make_batches(cs, len(cs))[0]
        plan = BatchPlan(batch, n_columns=3 * coords.shape[0])
        _, _, big1, _, _, _ = plan.assemble(coords)
        indices1, indptr1 = big1.indices, big1.indptr
        _, _, big2, _, _, _ = plan.assemble(coords + 0.1)
        assert big2.indices is indices1 and big2.indptr is indptr1
        z0, _, big0, _ = assemble_batch(batch, coords + 0.1)
        np.testing.assert_allclose(big2.data, big0.data, rtol=RTOL, atol=ATOL)

    def test_structural_arrays_are_frozen(self, rng):
        coords, cs = _chain_constraints(rng, 6)
        batch = make_batches(cs, len(cs))[0]
        plan = BatchPlan(batch, n_columns=3 * coords.shape[0])
        for arr in (plan.indices, plan.indptr, plan.support, plan.variance):
            assert not arr.flags.writeable


class TestBatchHelpers:
    def test_dimension_and_atoms_are_cached(self, rng):
        _, cs = _chain_constraints(rng, 6)
        batch = make_batches(cs, 1000)[0]
        assert batch.dimension == sum(c.dimension for c in batch.constraints)
        atoms = batch.atoms()
        assert batch.atoms() is atoms

    def test_group_by_type_regroups_stably(self, rng):
        _, cs = _chain_constraints(rng, 8)
        grouped = make_batches(cs, 1000, group_by_type=True)[0].constraints
        # each type forms one contiguous run ...
        types = [type(c) for c in grouped]
        assert len(set(types)) == len(
            [t for i, t in enumerate(types) if i == 0 or types[i - 1] is not t]
        )
        # ... ordered by first appearance, preserving in-type order
        by_type: dict[type, list] = {}
        for c in cs:
            by_type.setdefault(type(c), []).append(c)
        expected = [c for group in by_type.values() for c in group]
        assert list(grouped) == expected

    def test_default_packing_is_legacy_order(self, rng):
        """Ordering experiments depend on batches following input order."""
        _, cs = _chain_constraints(rng, 8)
        flat = [c for b in make_batches(cs, 4) for c in b.constraints]
        assert flat == cs


class TestPlanCacheLifecycle:
    def test_warm_full_resolve_rebuilds_nothing(self, helix2_problem):
        ws = get_workspace()
        ws.clear()
        session = SolveSession(
            helix2_problem.hierarchy,
            helix2_problem.constraints,
            options=UpdateOptions(kernel_impl="vector"),
        )
        session.solve(helix2_problem.initial_estimate(0), max_cycles=2, tol=0.0)
        assert ws.plan_builds > 0
        ws.plan_builds = ws.plan_hits = 0
        session.resolve(scope="full")
        assert ws.plan_builds == 0
        assert ws.plan_hits > 0

    def test_edit_rebuilds_only_affected_plans(self, helix2_problem):
        ws = get_workspace()
        ws.clear()
        session = SolveSession(
            helix2_problem.hierarchy,
            helix2_problem.constraints,
            options=UpdateOptions(kernel_impl="vector"),
        )
        session.solve(helix2_problem.initial_estimate(0), max_cycles=2, tol=0.0)
        cid, old = next(
            (cid, c)
            for cid, c in session.constraints.items()
            if isinstance(c, DistanceConstraint)
        )
        ws.plan_builds = 0
        session.update_constraints(
            {
                cid: DistanceConstraint(
                    old.i, old.j, old.distance * 1.01, old.sigma2
                )
            }
        )
        session.resolve()
        # only the one batch containing the edited constraint replans
        assert ws.plan_builds == 1

    def test_lru_eviction(self, rng):
        from repro.linalg import Workspace

        coords, cs = _chain_constraints(rng, 6)
        ws = Workspace()
        ws.plan_capacity = 2
        n = 3 * coords.shape[0]
        batches = make_batches(cs, 3)[:3]
        for b in batches:
            ws.plan_for(b, n_columns=n)
        assert ws.plan_builds == 3
        ws.plan_for(batches[0], n_columns=n)  # evicted → rebuilt
        assert ws.plan_builds == 4
        ws.plan_for(batches[2], n_columns=n)  # still resident → hit
        assert ws.plan_hits == 1


class TestVectorImplEndToEnd:
    def test_flat_solve_matches_fast(self, square_estimate, square_constraints):
        from repro.core.update import apply_batch

        batch = make_batches(square_constraints, 100)[0]
        fast = apply_batch(
            square_estimate, batch, options=UpdateOptions(kernel_impl="fast")
        )
        vec = apply_batch(
            square_estimate, batch, options=UpdateOptions(kernel_impl="vector")
        )
        np.testing.assert_allclose(vec.mean, fast.mean, rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(
            vec.covariance, fast.covariance, rtol=1e-10, atol=1e-12
        )

    def test_out_of_map_atom_raises_like_scalar_path(self, rng):
        from repro.errors import ConstraintError

        coords, cs = _chain_constraints(rng, 6)
        batch = make_batches(cs, len(cs))[0]
        atom_to_column = np.full(coords.shape[0], -1, dtype=np.int64)
        with pytest.raises(ConstraintError, match="outside the local column map"):
            BatchPlan(batch, atom_to_column=atom_to_column, n_columns=9)
