"""Finite-difference verification of every constraint Jacobian.

Property-based: hypothesis draws random non-degenerate geometries; the
analytic Jacobian must match central differences.  This is the single
most important correctness property of the measurement layer — a wrong
gradient silently corrupts every estimate.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import (
    AngleConstraint,
    DistanceConstraint,
    PositionConstraint,
    TorsionConstraint,
)

EPS = 1e-6


def fd_jacobian(constraint, coords):
    """Central-difference Jacobian over the constraint's local coordinates."""
    base = constraint.evaluate(coords)
    d = constraint.dimension
    na = len(constraint.atoms)
    out = np.zeros((d, 3 * na))
    for k, atom in enumerate(constraint.atoms):
        for c in range(3):
            plus = coords.copy()
            minus = coords.copy()
            plus[atom, c] += EPS
            minus[atom, c] -= EPS
            out[:, 3 * k + c] = (
                constraint.evaluate(plus) - constraint.evaluate(minus)
            ) / (2 * EPS)
    return out


def well_separated(coords, pairs, min_dist=0.5):
    return all(np.linalg.norm(coords[i] - coords[j]) > min_dist for i, j in pairs)


coord_strategy = st.floats(-5.0, 5.0, allow_nan=False, allow_infinity=False)


def coords_array(n):
    return st.lists(
        st.tuples(coord_strategy, coord_strategy, coord_strategy),
        min_size=n,
        max_size=n,
    ).map(lambda rows: np.array(rows, dtype=np.float64))


class TestDistanceJacobian:
    @given(coords_array(2))
    @settings(max_examples=60, deadline=None)
    def test_matches_finite_difference(self, coords):
        if not well_separated(coords, [(0, 1)]):
            return
        c = DistanceConstraint(0, 1, 1.0, 0.1)
        assert np.allclose(c.jacobian(coords), fd_jacobian(c, coords), atol=1e-5)

    def test_unit_gradient_magnitude(self, rng):
        coords = rng.normal(0, 2, (2, 3))
        jac = DistanceConstraint(0, 1, 1.0, 0.1).jacobian(coords)
        assert np.linalg.norm(jac[0, :3]) == pytest.approx(1.0)
        assert np.allclose(jac[0, :3], -jac[0, 3:])


class TestAngleJacobian:
    @given(coords_array(3))
    @settings(max_examples=60, deadline=None)
    def test_matches_finite_difference(self, coords):
        if not well_separated(coords, [(0, 1), (1, 2), (0, 2)]):
            return
        c = AngleConstraint(0, 1, 2, 1.0, 0.1)
        # Skip near-degenerate angles where arccos' derivative blows up.
        theta = c.evaluate(coords)[0]
        if theta < 0.15 or theta > np.pi - 0.15:
            return
        assert np.allclose(c.jacobian(coords), fd_jacobian(c, coords), atol=1e-4)

    def test_translation_invariance(self, rng):
        coords = rng.normal(0, 2, (3, 3))
        jac = AngleConstraint(0, 1, 2, 1.0, 0.1).jacobian(coords)
        # Gradients of a translation-invariant function sum to zero.
        total = jac[0, 0:3] + jac[0, 3:6] + jac[0, 6:9]
        assert np.allclose(total, 0.0, atol=1e-12)


class TestTorsionJacobian:
    @given(coords_array(4))
    @settings(max_examples=60, deadline=None)
    def test_matches_finite_difference(self, coords):
        # The Blondel-Karplus gradients assume generic (pairwise distinct)
        # positions; coincident atoms create mirror-symmetric configurations
        # where the generic formula does not apply.
        pairs = [(a, b) for a in range(4) for b in range(a + 1, 4)]
        if not well_separated(coords, pairs):
            return
        c = TorsionConstraint(0, 1, 2, 3, 0.0, 0.1)
        # Skip near-collinear chains (normals vanish, gradient singular).
        b1 = coords[1] - coords[0]
        b2 = coords[2] - coords[1]
        b3 = coords[3] - coords[2]
        if (
            np.linalg.norm(np.cross(b1, b2)) < 0.3
            or np.linalg.norm(np.cross(b2, b3)) < 0.3
        ):
            return
        phi = c.evaluate(coords)[0]
        if abs(abs(phi) - np.pi) < 0.05:  # FD wraps across the branch cut
            return
        assert np.allclose(c.jacobian(coords), fd_jacobian(c, coords), atol=1e-4)

    def test_translation_invariance(self, rng):
        coords = rng.normal(0, 2, (4, 3))
        jac = TorsionConstraint(0, 1, 2, 3, 0.0, 0.1).jacobian(coords)
        total = sum(jac[0, 3 * k : 3 * k + 3] for k in range(4))
        assert np.allclose(total, 0.0, atol=1e-10)


class TestPositionJacobian:
    @given(coords_array(1))
    @settings(max_examples=20, deadline=None)
    def test_matches_finite_difference(self, coords):
        c = PositionConstraint(0, np.zeros(3), 1.0)
        assert np.allclose(c.jacobian(coords), fd_jacobian(c, coords), atol=1e-8)
