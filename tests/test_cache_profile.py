"""Tests for the cache model, trace profiling and calibration."""

import numpy as np
import pytest

from repro.core.hier_solver import HierarchicalSolver
from repro.errors import SimulationError
from repro.experiments.calibration import (
    calibrate_rates,
    paper_reference,
    record_cycle,
    validate_against,
)
from repro.linalg.counters import KernelEvent, OpCategory, Recorder, recording
from repro.linalg.profile import format_profile, profile_events, profile_recorder
from repro.machine import DASH
from repro.machine.cache import DEFAULT_LOCALITY, CacheModel, dash_with_cache_model
from repro.molecules.rna import build_helix


def ev(cat, nbytes, flops=1e6, seconds=0.001):
    return KernelEvent(cat, flops, nbytes, (0,), seconds)


class TestCacheModel:
    def test_fits_in_cache_cold_only(self):
        cache = CacheModel(1e6, cold_fraction=0.03)
        assert cache.miss_fraction(ev(OpCategory.MATMAT, 1e5)) == 0.03

    def test_overflow_increases_misses(self):
        cache = CacheModel(1e5, cold_fraction=0.03)
        small = cache.miss_fraction(ev(OpCategory.DENSE_SPARSE, 2e5))
        large = cache.miss_fraction(ev(OpCategory.DENSE_SPARSE, 2e6))
        assert 0.03 < small < large <= 1.0

    def test_tiled_kernels_resist_overflow(self):
        cache = CacheModel(1e5)
        mm = cache.miss_fraction(ev(OpCategory.MATMAT, 1e7))
        ds = cache.miss_fraction(ev(OpCategory.DENSE_SPARSE, 1e7))
        assert mm < ds

    def test_custom_locality(self):
        cache = CacheModel(1e5, locality_factor={OpCategory.MATMAT: 1.0})
        default = CacheModel(1e5)
        e = ev(OpCategory.MATMAT, 1e7)
        assert cache.miss_fraction(e) > default.miss_fraction(e)

    def test_validation(self):
        with pytest.raises(SimulationError):
            CacheModel(0.0)
        with pytest.raises(SimulationError):
            CacheModel(1e5, cold_fraction=1.5)

    def test_all_categories_have_locality(self):
        assert set(DEFAULT_LOCALITY) == set(OpCategory)

    def test_derived_fractions_close_to_hand_set(self):
        """First-principles derivation must land near the calibrated
        fixed fractions (the validation claim in the module docstring)."""
        cfg, _cache = dash_with_cache_model()
        hand = DASH().remote_traffic_fraction
        derived = cfg.remote_traffic_fraction
        assert abs(derived[OpCategory.DENSE_SPARSE] - hand[OpCategory.DENSE_SPARSE]) < 0.15
        assert derived[OpCategory.MATMAT] < 0.08

    def test_variant_simulates(self):
        from repro.machine import simulate_solve

        cfg, _ = dash_with_cache_model()
        p = build_helix(2)
        p.assign()
        cycle = HierarchicalSolver(p.hierarchy, batch_size=16).run_cycle(
            p.initial_estimate(0)
        )
        res = simulate_solve(cycle, p.hierarchy, cfg, 4)
        assert res.work_time > 0


class TestTraceProfile:
    def test_aggregates(self):
        events = [
            ev(OpCategory.MATMAT, 100.0, flops=10.0, seconds=1.0),
            ev(OpCategory.MATMAT, 100.0, flops=30.0, seconds=1.0),
            ev(OpCategory.VECTOR, 50.0, flops=5.0, seconds=0.5),
        ]
        prof = profile_events(events)
        assert prof[OpCategory.MATMAT].calls == 2
        assert prof[OpCategory.MATMAT].flops == 40.0
        assert prof.total_flops == 45.0
        assert prof.dominant_category() is OpCategory.MATMAT
        assert prof.share(OpCategory.VECTOR) == pytest.approx(5.0 / 45.0)

    def test_rates_and_intensity(self):
        prof = profile_events([ev(OpCategory.SYSTEM, 200.0, flops=100.0, seconds=2.0)])
        p = prof[OpCategory.SYSTEM]
        assert p.achieved_flops == 50.0
        assert p.arithmetic_intensity == 0.5
        assert p.mean_call_flops == 100.0

    def test_empty_categories_zero(self):
        prof = profile_events([])
        assert prof.total_flops == 0.0
        assert prof[OpCategory.CHOLESKY].achieved_flops == 0.0
        assert prof.share(OpCategory.CHOLESKY) == 0.0

    def test_profile_recorder_and_format(self):
        rec = Recorder()
        rec.record(OpCategory.MATMAT, 1e6, 1e4, (10,), 0.01)
        prof = profile_recorder(rec)
        text = format_profile(prof)
        assert "m-m" in text and "GF/s" in text

    def test_real_solver_trace_mm_dominant(self, helix2_problem):
        with recording() as rec:
            HierarchicalSolver(helix2_problem.hierarchy, batch_size=16).run_cycle(
                helix2_problem.initial_estimate(0)
            )
        prof = profile_recorder(rec)
        assert prof.dominant_category() is OpCategory.MATMAT
        # tiled dense product has by far the highest arithmetic intensity
        assert (
            prof[OpCategory.MATMAT].arithmetic_intensity
            > prof[OpCategory.VECTOR].arithmetic_intensity
        )


class TestCalibration:
    @pytest.fixture(scope="class")
    def helix2_cycle(self):
        return record_cycle(build_helix(2))

    def test_rates_reproduce_reference(self, helix2_cycle):
        reference = {c: 0.5 for c in OpCategory}
        cal = calibrate_rates(helix2_cycle, reference)
        # predicted total time = sum flops/rate = sum reference = 6 * 0.5
        predicted = sum(
            e.flops / cal.rates[e.category] for e in helix2_cycle.recorder.events
        )
        assert predicted == pytest.approx(3.0)

    def test_missing_reference_rejected(self, helix2_cycle):
        with pytest.raises(SimulationError, match="missing"):
            calibrate_rates(helix2_cycle, {OpCategory.MATMAT: 1.0})

    def test_paper_reference_table3(self):
        ref = paper_reference("table3")
        assert ref[OpCategory.MATMAT] == pytest.approx(384.97)
        assert set(ref) == set(OpCategory)

    def test_as_config_installs_rates(self, helix2_cycle):
        cal = calibrate_rates(helix2_cycle, {c: 1.0 for c in OpCategory})
        cfg = cal.as_config(DASH(), name="test")
        assert cfg.name == "test"
        assert cfg.rates == cal.rates
        assert cfg.cluster_size == 4

    def test_validate_against_self_is_exact(self, helix2_cycle):
        reference = {c: 1.0 for c in OpCategory}
        cal = calibrate_rates(helix2_cycle, reference)
        err = validate_against(cal, helix2_cycle, 6.0)
        assert err == pytest.approx(0.0, abs=1e-12)

    def test_stock_dash_matches_fresh_calibration(self):
        """The shipped DASH rates must be re-derivable from the paper's
        Table 3 reference within ~15 % (trace details drift slightly as
        the library evolves; the shapes don't)."""
        cycle = record_cycle(build_helix(16))
        cal = calibrate_rates(cycle, paper_reference("table3"))
        stock = DASH().rates
        for cat in OpCategory:
            assert 0.85 < cal.rates[cat] / stock[cat] < 1.18, cat
