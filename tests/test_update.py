"""Tests for the sequential update algorithm (Figure 1)."""

import numpy as np
import pytest

from repro.constraints import DistanceConstraint, LinearConstraint, PositionConstraint
from repro.constraints.batch import ConstraintBatch, make_batches
from repro.core.state import StructureEstimate
from repro.core.update import UpdateOptions, apply_batch
from repro.errors import DimensionError
from repro.linalg.counters import OpCategory, recording


def prior(rng, p=3, sigma=1.0):
    return StructureEstimate.from_coords(rng.normal(0, 2, (p, 3)), sigma=sigma)


class TestLinearExactness:
    """For linear h the update is exact Bayes; closed forms must match."""

    def test_scalar_direct_observation(self, rng):
        est = prior(rng, p=1, sigma=1.0)
        z = 5.0
        c = LinearConstraint((0,), np.array([[1.0, 0, 0]]), np.array([z]), np.array([1.0]))
        post = apply_batch(est, ConstraintBatch((c,)))
        # Kalman scalar: posterior mean = (prior/1 + z/1) / (1/1 + 1/1)
        expected = (est.mean[0] + z) / 2.0
        assert post.mean[0] == pytest.approx(expected)
        assert post.covariance[0, 0] == pytest.approx(0.5)

    def test_posterior_matches_information_form(self, rng):
        est = prior(rng, p=2, sigma=2.0)
        a = rng.normal(size=(3, 6))
        z = rng.normal(size=3)
        c = LinearConstraint((0, 1), a, z, np.full(3, 0.5))
        post = apply_batch(est, ConstraintBatch((c,)))
        lam0 = np.linalg.inv(est.covariance)
        lam = lam0 + a.T @ np.diag(1 / c.variance) @ a
        cov = np.linalg.inv(lam)
        mean = cov @ (lam0 @ est.mean + a.T @ (z / c.variance))
        assert np.allclose(post.covariance, cov, atol=1e-10)
        assert np.allclose(post.mean, mean, atol=1e-10)

    def test_order_independence_linear(self, rng):
        est = prior(rng, p=2)
        cons = []
        for _ in range(4):
            a = rng.normal(size=(1, 6))
            cons.append(
                LinearConstraint((0, 1), a, rng.normal(size=1), np.array([0.3]))
            )
        out1 = est
        for b in make_batches(cons, 1):
            out1 = apply_batch(out1, b)
        out2 = est
        for b in make_batches(list(reversed(cons)), 1):
            out2 = apply_batch(out2, b)
        assert np.allclose(out1.mean, out2.mean, atol=1e-9)
        assert np.allclose(out1.covariance, out2.covariance, atol=1e-9)

    def test_batching_invariance_linear(self, rng):
        """One batch of m rows == m batches of 1 row, for linear h."""
        est = prior(rng, p=2)
        cons = []
        for _ in range(4):
            a = rng.normal(size=(1, 6))
            cons.append(LinearConstraint((0, 1), a, rng.normal(size=1), np.array([0.3])))
        one = apply_batch(est, ConstraintBatch(tuple(cons)))
        seq = est
        for b in make_batches(cons, 1):
            seq = apply_batch(seq, b)
        assert np.allclose(one.mean, seq.mean, atol=1e-9)
        assert np.allclose(one.covariance, seq.covariance, atol=1e-9)


class TestCovarianceProperties:
    def test_posterior_cov_symmetric(self, rng):
        est = prior(rng)
        c = DistanceConstraint(0, 1, 2.0, 0.1)
        post = apply_batch(est, ConstraintBatch((c,)))
        assert np.allclose(post.covariance, post.covariance.T)

    def test_variance_never_increases_on_observed(self, rng):
        est = prior(rng)
        c = PositionConstraint(1, np.zeros(3), 0.5)
        post = apply_batch(est, ConstraintBatch((c,)))
        assert np.all(np.diag(post.covariance) <= np.diag(est.covariance) + 1e-12)

    def test_unobserved_atoms_untouched(self, rng):
        """Locality: a constraint on atoms {0,1} of an uncorrelated prior
        must leave atom 2's estimate exactly alone (the §3 key fact)."""
        est = prior(rng)
        c = DistanceConstraint(0, 1, 2.0, 0.1)
        post = apply_batch(est, ConstraintBatch((c,)))
        assert np.allclose(post.mean[6:9], est.mean[6:9])
        assert np.allclose(post.covariance[6:9, 6:9], est.covariance[6:9, 6:9])
        assert np.allclose(post.covariance[:6, 6:9], 0.0)

    def test_correlated_prior_spreads_update(self, rng):
        """Once atoms are correlated, a local constraint moves both."""
        est = prior(rng, p=2)
        tie = LinearConstraint(
            (0, 1),
            np.array([[1.0, 0, 0, -1, 0, 0]]),
            np.array([0.0]),
            np.array([0.01]),
        )
        est = apply_batch(est, ConstraintBatch((tie,)))
        before = est.mean.copy()
        obs = LinearConstraint((0,), np.array([[1.0, 0, 0]]), np.array([9.0]), np.array([0.01]))
        post = apply_batch(est, ConstraintBatch((obs,)))
        assert abs(post.mean[3] - before[3]) > 1e-3  # atom 1 x moved too

    def test_joseph_matches_standard_linear(self, rng):
        est = prior(rng, p=2)
        a = rng.normal(size=(2, 6))
        c = LinearConstraint((0, 1), a, rng.normal(size=2), np.full(2, 0.5))
        std = apply_batch(est, ConstraintBatch((c,)))
        jos = apply_batch(est, ConstraintBatch((c,)), options=UpdateOptions(joseph=True))
        assert np.allclose(std.covariance, jos.covariance, atol=1e-9)
        assert np.allclose(std.mean, jos.mean, atol=1e-9)


class TestNonlinear:
    def test_distance_update_moves_toward_target(self, rng):
        coords = np.array([[0.0, 0, 0], [1.0, 0, 0]])
        est = StructureEstimate.from_coords(coords, sigma=1.0)
        c = DistanceConstraint(0, 1, 3.0, 0.01)
        post = apply_batch(est, ConstraintBatch((c,)))
        new_d = np.linalg.norm(post.coords[0] - post.coords[1])
        assert new_d > 1.5  # moved strongly toward 3.0

    def test_local_iterations_improve_nonlinear_fit(self, rng):
        coords = np.array([[0.0, 0, 0], [1.0, 0, 0]])
        est = StructureEstimate.from_coords(coords, sigma=2.0)
        c = DistanceConstraint(0, 1, 4.0, 0.001)
        batch = ConstraintBatch((c,))
        one = apply_batch(est, batch, options=UpdateOptions(local_iterations=1))
        three = apply_batch(est, batch, options=UpdateOptions(local_iterations=3))
        err1 = abs(np.linalg.norm(one.coords[0] - one.coords[1]) - 4.0)
        err3 = abs(np.linalg.norm(three.coords[0] - three.coords[1]) - 4.0)
        assert err3 <= err1 + 1e-9

    def test_invalid_local_iterations(self, rng):
        est = prior(rng)
        c = DistanceConstraint(0, 1, 2.0, 0.1)
        with pytest.raises(DimensionError):
            apply_batch(est, ConstraintBatch((c,)), options=UpdateOptions(local_iterations=0))


class TestLocalColumnMap:
    def test_local_state_update_matches_global(self, rng):
        """Updating a 2-atom local estimate must equal the corresponding
        block of updating the global estimate (uncorrelated prior)."""
        coords = rng.normal(0, 2, (4, 3))
        global_est = StructureEstimate.from_coords(coords, sigma=1.0)
        c = DistanceConstraint(1, 2, 2.5, 0.1)
        global_post = apply_batch(global_est, ConstraintBatch((c,)))
        atoms = np.array([1, 2])
        local = global_est.extract_atoms(atoms)
        cmap = np.full(4, -1, dtype=np.int64)
        cmap[1], cmap[2] = 0, 1
        local_post = apply_batch(local, ConstraintBatch((c,)), atom_to_column=cmap)
        assert np.allclose(local_post.mean, global_post.extract_atoms(atoms).mean, atol=1e-12)
        assert np.allclose(
            local_post.covariance, global_post.extract_atoms(atoms).covariance, atol=1e-12
        )


class TestEventStream:
    def test_all_six_categories_emitted(self, rng):
        est = prior(rng)
        c = DistanceConstraint(0, 1, 2.0, 0.1)
        with recording() as rec:
            apply_batch(est, ConstraintBatch((c,)))
        cats = {e.category for e in rec.events}
        assert cats == set(OpCategory)

    def test_mm_flops_dominant_for_large_state(self, rng):
        est = prior(rng, p=30)
        cons = [DistanceConstraint(i, i + 1, 2.0, 0.1) for i in range(8)]
        with recording() as rec:
            apply_batch(est, ConstraintBatch(tuple(cons)))
        by = rec.flops_by_category()
        assert by[OpCategory.MATMAT] == max(by.values())


class TestIllConditioning:
    def test_duplicate_constraints_converge_via_backoff(self):
        """Regression: many duplicated near-exact distance constraints drive
        the innovation covariance toward singularity; the escalating
        regularization retry must absorb the failure instead of raising
        NotPositiveDefiniteError."""
        est = StructureEstimate.from_coords(
            np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]]), sigma=1.0
        )
        duplicates = tuple(DistanceConstraint(0, 1, 2.0, 1e-18) for _ in range(8))
        log = []
        post = apply_batch(est, ConstraintBatch(duplicates), retry_log=log)
        assert np.all(np.isfinite(post.mean))
        assert np.all(np.isfinite(post.covariance))
        d = float(np.linalg.norm(post.coords[1] - post.coords[0]))
        assert d == pytest.approx(2.0, abs=1e-6)
        # any retries that happened must have ended in success
        assert all(r.succeeded for r in log)

    def test_duplicate_constraints_fail_without_retries(self):
        """The same batch with retries disabled shows why they exist."""
        from repro.errors import NotPositiveDefiniteError

        est = StructureEstimate.from_coords(
            np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]]), sigma=1.0
        )
        duplicates = tuple(DistanceConstraint(0, 1, 2.0, 1e-18) for _ in range(8))
        with pytest.raises(NotPositiveDefiniteError):
            apply_batch(
                est, ConstraintBatch(duplicates), options=UpdateOptions(jitter=0.0)
            )
