"""Tests for non-Gaussian distance-bound constraints."""

import numpy as np
import pytest

from repro.constraints import DistanceBoundConstraint, DistanceConstraint
from repro.constraints.batch import ConstraintBatch
from repro.core.state import StructureEstimate
from repro.core.update import apply_batch
from repro.errors import ConstraintError


def coords_at(distance):
    return np.array([[0.0, 0, 0], [distance, 0, 0]])


class TestValidation:
    def test_needs_some_bound(self):
        with pytest.raises(ConstraintError, match="at least one"):
            DistanceBoundConstraint(0, 1, None, None, 0.1)

    def test_distinct_atoms(self):
        with pytest.raises(ConstraintError):
            DistanceBoundConstraint(0, 0, 1.0, 2.0, 0.1)

    def test_lower_le_upper(self):
        with pytest.raises(ConstraintError, match="exceeds"):
            DistanceBoundConstraint(0, 1, 3.0, 2.0, 0.1)

    def test_positive_lower(self):
        with pytest.raises(ConstraintError, match="positive"):
            DistanceBoundConstraint(0, 1, 0.0, 2.0, 0.1)


class TestActivation:
    def test_inactive_inside_bounds(self):
        c = DistanceBoundConstraint(0, 1, 1.0, 3.0, 0.1)
        coords = coords_at(2.0)
        assert c.violated_bound(coords) is None
        assert c.residual(coords)[0] == 0.0
        assert np.allclose(c.jacobian(coords), 0.0)
        assert c.satisfied(coords)

    def test_upper_violation(self):
        c = DistanceBoundConstraint(0, 1, None, 3.0, 0.1)
        coords = coords_at(5.0)
        assert c.violated_bound(coords) == 3.0
        assert c.residual(coords)[0] == pytest.approx(-2.0)  # pull closer
        assert not c.satisfied(coords)

    def test_lower_violation(self):
        c = DistanceBoundConstraint(0, 1, 2.0, None, 0.1)
        coords = coords_at(1.0)
        assert c.violated_bound(coords) == 2.0
        assert c.residual(coords)[0] == pytest.approx(1.0)  # push apart

    def test_jacobian_matches_distance_when_active(self):
        bound = DistanceBoundConstraint(0, 1, None, 3.0, 0.1)
        dist = DistanceConstraint(0, 1, 3.0, 0.1)
        coords = coords_at(5.0)
        assert np.allclose(bound.jacobian(coords), dist.jacobian(coords))

    def test_satisfied_with_slack(self):
        c = DistanceBoundConstraint(0, 1, None, 3.0, 0.1)
        assert c.satisfied(coords_at(3.05), slack=0.1)
        assert not c.satisfied(coords_at(3.05), slack=0.0)


class TestUpdates:
    def test_inactive_bound_is_noop_on_mean(self):
        est = StructureEstimate.from_coords(coords_at(2.0), sigma=1.0)
        c = DistanceBoundConstraint(0, 1, 1.0, 3.0, 0.1)
        post = apply_batch(est, ConstraintBatch((c,)))
        assert np.allclose(post.mean, est.mean)

    def test_violated_upper_pulls_in(self):
        est = StructureEstimate.from_coords(coords_at(5.0), sigma=1.0)
        c = DistanceBoundConstraint(0, 1, None, 3.0, 0.01)
        post = apply_batch(est, ConstraintBatch((c,)))
        new_d = float(np.linalg.norm(post.coords[0] - post.coords[1]))
        assert new_d < 5.0

    def test_violated_lower_pushes_out(self):
        est = StructureEstimate.from_coords(coords_at(0.5), sigma=1.0)
        c = DistanceBoundConstraint(0, 1, 2.0, None, 0.01)
        post = apply_batch(est, ConstraintBatch((c,)))
        new_d = float(np.linalg.norm(post.coords[0] - post.coords[1]))
        assert new_d > 0.5

    def test_iterated_cycles_settle_inside_bounds(self):
        """Repeated cycles implement the non-Gaussian update of [2]: the
        equilibrium satisfies all bounds (within noise slack)."""
        from repro.core.flat import FlatSolver
        from repro.constraints import PositionConstraint

        rng = np.random.default_rng(0)
        true = np.array([[0.0, 0, 0], [2.0, 0, 0], [4.0, 0, 0]])
        cons = [
            PositionConstraint(0, true[0], 0.01),
            PositionConstraint(2, true[2], 0.01),
            DistanceBoundConstraint(0, 1, 1.5, 2.5, 0.01),
            DistanceBoundConstraint(1, 2, 1.5, 2.5, 0.01),
        ]
        bad = true + rng.normal(0, 1.0, true.shape)
        est = StructureEstimate.from_coords(bad, sigma=2.0)
        solver = FlatSolver(cons, batch_size=8)
        report = solver.solve(est, max_cycles=30, tol=1e-8)
        coords = report.estimate.coords
        for c in cons[2:]:
            assert c.satisfied(coords, slack=0.15), (
                c.lower,
                c.upper,
                float(np.linalg.norm(coords[c.i] - coords[c.j])),
            )
