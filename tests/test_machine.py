"""Tests for the machine configurations, cost model and simulator."""

import math

import numpy as np
import pytest

from repro.core.assignment import assign_processors
from repro.core.hier_solver import HierarchicalSolver
from repro.core.workmodel import analytic_work_model
from repro.errors import SimulationError
from repro.linalg.counters import KernelEvent, OpCategory
from repro.machine import (
    CHALLENGE,
    DASH,
    MachineConfig,
    MachineSimulator,
    clusters_spanned,
    kernel_elapsed,
    node_elapsed,
    simulate_solve,
    uniform_machine,
)
from repro.machine.trace import CategoryBreakdown, format_speedup_table


def ev(cat=OpCategory.MATMAT, flops=1e6, nbytes=1e4, rows=1000):
    return KernelEvent(cat, flops, nbytes, (0,), 0.0, parallel_rows=rows)


class TestConfigs:
    def test_dash_topology(self):
        d = DASH()
        assert d.n_processors == 32
        assert d.cluster_size == 4
        assert d.n_clusters == 8
        assert d.distributed

    def test_challenge_topology(self):
        c = CHALLENGE()
        assert c.n_processors == 16
        assert c.n_clusters == 1
        assert not c.distributed

    def test_challenge_faster_than_dash(self):
        d, c = DASH(), CHALLENGE()
        for cat in OpCategory:
            assert c.rates[cat] > d.rates[cat]

    def test_rates_required_for_all_categories(self):
        with pytest.raises(SimulationError, match="rate"):
            MachineConfig(
                name="bad",
                n_processors=2,
                cluster_size=2,
                distributed=False,
                rates={OpCategory.MATMAT: 1e9},
                serial_fraction={},
                barrier_seconds=0.0,
            )

    def test_cluster_size_must_divide(self):
        with pytest.raises(SimulationError, match="divide"):
            MachineConfig(
                name="bad",
                n_processors=6,
                cluster_size=4,
                distributed=True,
                rates={c: 1e9 for c in OpCategory},
                serial_fraction={},
                barrier_seconds=0.0,
            )

    def test_serial_fraction_range(self):
        with pytest.raises(SimulationError, match="serial"):
            MachineConfig(
                name="bad",
                n_processors=2,
                cluster_size=2,
                distributed=False,
                rates={c: 1e9 for c in OpCategory},
                serial_fraction={OpCategory.MATMAT: 1.5},
                barrier_seconds=0.0,
            )

    def test_uniform_machine(self):
        u = uniform_machine(4, flops=1e6)
        assert u.rates[OpCategory.VECTOR] == 1e6
        assert u.barrier_seconds == 0.0


class TestClustersSpanned:
    def test_within_one_cluster(self):
        assert clusters_spanned((0, 4), 4) == 1
        assert clusters_spanned((4, 8), 4) == 1

    def test_spanning(self):
        assert clusters_spanned((2, 6), 4) == 2
        assert clusters_spanned((0, 32), 4) == 8

    def test_single_processor(self):
        assert clusters_spanned((5, 6), 4) == 1

    def test_empty_range_rejected(self):
        with pytest.raises(SimulationError):
            clusters_spanned((3, 3), 4)


class TestKernelElapsed:
    def test_single_processor_is_flops_over_rate(self):
        cfg = uniform_machine(8, flops=1e6)
        t = kernel_elapsed(ev(flops=2e6), (0, 1), cfg)
        assert t == pytest.approx(2.0)

    def test_ideal_scaling_on_ideal_machine(self):
        cfg = uniform_machine(8, flops=1e6)
        t1 = kernel_elapsed(ev(flops=8e6), (0, 1), cfg)
        t8 = kernel_elapsed(ev(flops=8e6), (0, 8), cfg)
        assert t8 == pytest.approx(t1 / 8)

    def test_parallel_rows_bound(self):
        cfg = uniform_machine(8, flops=1e6)
        t = kernel_elapsed(ev(flops=8e6, rows=2), (0, 8), cfg)
        assert t == pytest.approx(8.0 / 2)

    def test_serial_fraction_amdahl(self):
        cfg = uniform_machine(4, flops=1e6, serial_fraction=0.5)
        t1 = kernel_elapsed(ev(flops=1e6), (0, 1), cfg)
        t4 = kernel_elapsed(ev(flops=1e6), (0, 4), cfg)
        assert t4 == pytest.approx(t1 * (0.5 + 0.5 / 4))

    def test_barrier_cost_log_depth(self):
        cfg = uniform_machine(8, flops=1e6, barrier_seconds=1.0)
        t2 = kernel_elapsed(ev(flops=0.0), (0, 2), cfg)
        t8 = kernel_elapsed(ev(flops=0.0), (0, 8), cfg)
        assert t2 == pytest.approx(1.0)
        assert t8 == pytest.approx(3.0)

    def test_no_barrier_single_processor(self):
        cfg = uniform_machine(8, flops=1e6, barrier_seconds=1.0)
        assert kernel_elapsed(ev(flops=0.0), (3, 4), cfg) == 0.0

    def test_dash_remote_penalty_when_spanning(self):
        cfg = DASH()
        e = ev(cat=OpCategory.DENSE_SPARSE, flops=1e6, nbytes=1e6)
        within = kernel_elapsed(e, (0, 4), cfg)    # one cluster
        across = kernel_elapsed(e, (0, 8), cfg)    # two clusters
        # crossing clusters adds remote traffic that outweighs the 2x compute
        assert across > within / 2

    def test_dash_dense_less_affected_than_sparse(self):
        cfg = DASH()
        sp = ev(cat=OpCategory.DENSE_SPARSE, flops=1e6, nbytes=1e6)
        mm = ev(cat=OpCategory.MATMAT, flops=1e6, nbytes=1e6)
        sp_penalty = kernel_elapsed(sp, (0, 8), cfg) / (kernel_elapsed(sp, (0, 1), cfg) / 8)
        mm_penalty = kernel_elapsed(mm, (0, 8), cfg) / (kernel_elapsed(mm, (0, 1), cfg) / 8)
        assert sp_penalty > mm_penalty

    def test_challenge_bus_contention_grows(self):
        cfg = CHALLENGE()
        e = ev(cat=OpCategory.DENSE_SPARSE, flops=0.0, nbytes=1e9)
        t2 = kernel_elapsed(e, (0, 2), cfg)
        t16 = kernel_elapsed(e, (0, 16), cfg)
        assert t16 > t2

    def test_empty_range_rejected(self):
        with pytest.raises(SimulationError):
            kernel_elapsed(ev(), (2, 2), uniform_machine(4))


class TestNodeElapsed:
    def test_sums_and_splits(self):
        cfg = uniform_machine(2, flops=1e6)
        events = [ev(OpCategory.MATMAT, 1e6), ev(OpCategory.VECTOR, 2e6)]
        total, by_cat = node_elapsed(events, (0, 1), cfg)
        assert total == pytest.approx(3.0)
        assert by_cat[OpCategory.MATMAT] == pytest.approx(1.0)
        assert by_cat[OpCategory.VECTOR] == pytest.approx(2.0)
        assert by_cat[OpCategory.CHOLESKY] == 0.0


@pytest.fixture(scope="module")
def helix4_cycle():
    from repro.molecules.rna import build_helix

    problem = build_helix(4)
    problem.assign()
    solver = HierarchicalSolver(problem.hierarchy, batch_size=16)
    cycle = solver.run_cycle(problem.initial_estimate(0))
    return problem, cycle


class TestSimulator:
    def test_single_processor_time_is_total_work(self, helix4_cycle):
        problem, cycle = helix4_cycle
        cfg = uniform_machine(1, flops=1e9)
        res = simulate_solve(cycle, problem.hierarchy, cfg, 1)
        total_flops = sum(r.flops for r in cycle.records)
        assert res.work_time == pytest.approx(total_flops / 1e9)

    def test_speedup_on_ideal_machine_reasonable(self, helix4_cycle):
        problem, cycle = helix4_cycle
        cfg = uniform_machine(8, flops=1e9)
        r1 = simulate_solve(cycle, problem.hierarchy, cfg, 1)
        r8 = simulate_solve(cycle, problem.hierarchy, cfg, 8)
        speedup = r1.work_time / r8.work_time
        assert 4.0 < speedup <= 8.0 + 1e-9

    def test_makespan_at_least_critical_path(self, helix4_cycle):
        """Even infinitely many processors cannot beat the root's chain."""
        problem, cycle = helix4_cycle
        cfg = uniform_machine(8, flops=1e9)
        res = simulate_solve(cycle, problem.hierarchy, cfg, 8)
        root_rec = cycle.record_by_nid()[problem.hierarchy.root.nid]
        root_elapsed, _ = node_elapsed(root_rec.events, (0, 8), cfg)
        assert res.work_time >= root_elapsed - 1e-12

    def test_work_conservation_bounds(self, helix4_cycle):
        """Summed busy time can only grow with P (gang-scheduled processors
        stall inside width-limited kernels like Cholesky, and that stall is
        counted as busy — the paper's per-processor accounting), and every
        processor's busy time is bounded by the makespan."""
        problem, cycle = helix4_cycle
        cfg = uniform_machine(16, flops=1e9)
        r1 = simulate_solve(cycle, problem.hierarchy, cfg, 1)
        r16 = simulate_solve(cycle, problem.hierarchy, cfg, 16)
        assert sum(r16.busy_per_processor) >= sum(r1.busy_per_processor) - 1e-9
        assert all(b <= r16.work_time + 1e-12 for b in r16.busy_per_processor)

    def test_category_breakdown_sums_to_busy(self, helix4_cycle):
        problem, cycle = helix4_cycle
        cfg = DASH()
        res = simulate_solve(cycle, problem.hierarchy, cfg, 4)
        avg_busy = sum(res.busy_per_processor) / res.n_processors
        assert res.breakdown.total() == pytest.approx(avg_busy, rel=1e-9)

    def test_timeline_children_before_parents(self, helix4_cycle):
        problem, cycle = helix4_cycle
        res = simulate_solve(cycle, problem.hierarchy, DASH(), 8)
        start = {t.nid: t.start for t in res.timeline}
        finish = {t.nid: t.finish for t in res.timeline}
        for node in problem.hierarchy.nodes:
            for child in node.children:
                assert finish[child.nid] <= start[node.nid] + 1e-12

    def test_processor_exclusivity(self, helix4_cycle):
        """No two node tasks may overlap in time on a shared processor."""
        problem, cycle = helix4_cycle
        res = simulate_solve(cycle, problem.hierarchy, DASH(), 6)
        intervals = [[] for _ in range(6)]
        for t in res.timeline:
            for p in range(*t.proc_range):
                intervals[p].append((t.start, t.finish))
        for procs in intervals:
            procs.sort()
            for (s1, f1), (s2, f2) in zip(procs, procs[1:]):
                assert f1 <= s2 + 1e-12

    def test_utilization_bounded(self, helix4_cycle):
        problem, cycle = helix4_cycle
        res = simulate_solve(cycle, problem.hierarchy, DASH(), 8)
        assert 0.0 < res.utilization <= 1.0

    def test_more_processors_than_machine_rejected(self, helix4_cycle):
        problem, cycle = helix4_cycle
        with pytest.raises(SimulationError, match="has"):
            simulate_solve(cycle, problem.hierarchy, CHALLENGE(), 17)

    def test_missing_record_rejected(self, helix4_cycle):
        problem, cycle = helix4_cycle
        asg = assign_processors(problem.hierarchy, 2, analytic_work_model())
        with pytest.raises(SimulationError, match="record"):
            MachineSimulator(DASH()).simulate(problem.hierarchy, {}, asg)

    def test_workmodel_assignment_supported(self, helix4_cycle):
        problem, cycle = helix4_cycle
        res = simulate_solve(
            cycle, problem.hierarchy, DASH(), 4, model=analytic_work_model()
        )
        assert res.work_time > 0

    def test_deterministic(self, helix4_cycle):
        problem, cycle = helix4_cycle
        a = simulate_solve(cycle, problem.hierarchy, DASH(), 8)
        b = simulate_solve(cycle, problem.hierarchy, DASH(), 8)
        assert a.work_time == b.work_time


class TestTrace:
    def test_breakdown_row_order(self):
        bd = CategoryBreakdown({c: i for i, c in enumerate(OpCategory)})
        assert bd.as_row() == [
            bd[OpCategory.DENSE_SPARSE],
            bd[OpCategory.CHOLESKY],
            bd[OpCategory.SYSTEM],
            bd[OpCategory.MATMAT],
            bd[OpCategory.MATVEC],
            bd[OpCategory.VECTOR],
        ]

    def test_format_speedup_table(self, helix4_cycle):
        problem, cycle = helix4_cycle
        results = [simulate_solve(cycle, problem.hierarchy, DASH(), p) for p in (1, 2)]
        text = format_speedup_table(results)
        assert "NP" in text and "spdup" in text
        assert len(text.splitlines()) == 3

    def test_format_empty(self):
        assert "no results" in format_speedup_table([])
