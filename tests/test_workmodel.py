"""Tests for Equation 1 work estimation and its constrained fit."""

import numpy as np
import pytest

from repro.core.workmodel import (
    WorkModel,
    analytic_work_model,
    design_matrix,
    fit_work_model,
)
from repro.errors import WorkModelError


def synthetic_samples(c, n_vals=(100, 300, 900), m_vals=(4, 8, 16, 32, 64), noise=0.0, rng=None):
    ns, ms, ts = [], [], []
    model = WorkModel(np.asarray(c, dtype=float))
    for n in n_vals:
        for m in m_vals:
            t = model.per_constraint(n, m)
            if noise and rng is not None:
                t *= 1.0 + rng.normal(0, noise)
            ns.append(n)
            ms.append(m)
            ts.append(t)
    return np.array(ns), np.array(ms), np.array(ts)


class TestWorkModel:
    def test_per_constraint_formula(self):
        model = WorkModel(np.array([1.0, 2.0, 3.0, 4.0, 5.0]))
        assert model.per_constraint(2.0, 3.0) == pytest.approx(
            1 + 2 * 2 + 3 * 4 + 4 * 3 + 5 * 6
        )

    def test_vectorized_predict(self):
        model = WorkModel(np.ones(5))
        out = model.per_constraint(np.array([1.0, 2.0]), np.array([1.0, 1.0]))
        assert out.shape == (2,)

    def test_node_work_scales_with_rows(self):
        model = WorkModel(np.array([0.0, 0.0, 1e-6, 0.0, 0.0]))
        assert model.node_work(10, 100, 16) == pytest.approx(100 * 1e-4)

    def test_node_work_zero_rows(self):
        assert analytic_work_model().node_work(50, 0, 16) == 0.0

    def test_node_work_caps_batch(self):
        model = WorkModel(np.array([0.0, 0.0, 0.0, 1.0, 0.0]))  # t = m
        assert model.node_work(10, 4, 16) == pytest.approx(4 * 4)  # m capped at rows

    def test_best_batch(self):
        # t = 1/m-ish shape via negative m coefficient is unphysical; use
        # a model linear in m: best batch is the smallest candidate.
        model = WorkModel(np.array([0.0, 0.0, 1e-9, 1.0, 0.0]))
        assert model.best_batch(100, [4, 16, 64]) == 4

    def test_best_batch_empty(self):
        with pytest.raises(WorkModelError):
            analytic_work_model().best_batch(10, [])

    def test_coefficient_count_enforced(self):
        with pytest.raises(WorkModelError):
            WorkModel(np.ones(4))

    def test_paper_checks(self):
        good = WorkModel(np.array([1e-6, 0.0, 1e-9, 0.0, 0.0]))
        assert good.satisfies_paper_checks()
        bad = WorkModel(np.array([1e-6, 0.0, -1e-9, 0.0, 0.0]))
        assert not bad.satisfies_paper_checks()


class TestDesignMatrix:
    def test_columns(self):
        a = design_matrix(np.array([2.0]), np.array([3.0]))
        assert np.allclose(a, [[1, 2, 4, 3, 6]])


class TestFit:
    def test_recovers_exact_model(self):
        true = [1e-5, 2e-7, 3e-9, 1e-6, 2e-9]
        n, m, t = synthetic_samples(true)
        model = fit_work_model(n, m, t)
        assert np.allclose(model.coefficients, true, rtol=1e-3, atol=1e-12)

    def test_noisy_fit_close(self, rng):
        true = [1e-5, 2e-7, 3e-9, 1e-6, 2e-9]
        n, m, t = synthetic_samples(true, noise=0.05, rng=rng)
        model = fit_work_model(n, m, t)
        pred = model.per_constraint(n, m)
        assert np.median(np.abs(pred - t) / t) < 0.2

    def test_fit_satisfies_checks(self, rng):
        true = [1e-5, 2e-7, 3e-9, 1e-6, 2e-9]
        n, m, t = synthetic_samples(true, noise=0.1, rng=rng)
        assert fit_work_model(n, m, t).satisfies_paper_checks()

    def test_small_batches_excluded(self):
        true = [1e-5, 0.0, 3e-9, 1e-6, 0.0]
        n, m, t = synthetic_samples(true, m_vals=(1, 2, 4, 8, 16, 32))
        # Corrupt only the small-batch cells; the fit must ignore them.
        t = t.copy()
        t[m < 4] *= 50
        model = fit_work_model(n, m, t, min_batch=4)
        pred = model.per_constraint(n[m >= 4], m[m >= 4])
        assert np.allclose(pred, t[m >= 4], rtol=1e-3)

    def test_too_few_samples(self):
        with pytest.raises(WorkModelError, match="not enough"):
            fit_work_model([100, 200], [8, 8], [1.0, 2.0])

    def test_shape_mismatch(self):
        with pytest.raises(WorkModelError):
            fit_work_model([1.0, 2.0], [1.0], [1.0, 2.0])

    def test_negative_time_never_predicted_near_origin(self, rng):
        true = [1e-5, 2e-7, 3e-9, 1e-6, 2e-9]
        n, m, t = synthetic_samples(true, noise=0.2, rng=rng)
        model = fit_work_model(n, m, t)
        assert model.per_constraint(0.0, 0.0) >= 0.0
        assert model.per_constraint(1.0, 1.0) >= 0.0


class TestAnalyticModel:
    def test_checks_pass(self):
        assert analytic_work_model().satisfies_paper_checks()

    def test_scales_inverse_with_rate(self):
        slow = analytic_work_model(1e6).per_constraint(100, 16)
        fast = analytic_work_model(1e9).per_constraint(100, 16)
        assert slow == pytest.approx(fast * 1000)
