"""Tests for the static processor-assignment heuristic (§4.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assignment import (
    ProcessorAssignment,
    assign_processors,
    estimate_node_work,
)
from repro.core.hierarchy import Hierarchy, HierarchyNode, assign_constraints
from repro.core.workmodel import analytic_work_model
from repro.constraints import DistanceConstraint
from repro.errors import AssignmentError


def binary_tree(depth, atoms_per_leaf=2):
    """Perfect binary tree over 2^depth leaves."""
    counter = [0]

    def build(d):
        if d == 0:
            lo = counter[0]
            counter[0] += atoms_per_leaf
            return HierarchyNode(atoms=np.arange(lo, counter[0]))
        left = build(d - 1)
        right = build(d - 1)
        return HierarchyNode(
            atoms=np.concatenate([left.atoms, right.atoms]), children=[left, right]
        )

    root = build(depth)
    return Hierarchy(root, counter[0])


def with_leaf_constraints(h):
    cons = []
    for leaf in h.leaves():
        a = leaf.atoms
        for i in range(len(a) - 1):
            cons.append(DistanceConstraint(int(a[i]), int(a[i + 1]), 1.0, 0.1))
    assign_constraints(h, cons)
    return h


class TestEstimateNodeWork:
    def test_subtree_accumulates(self):
        h = with_leaf_constraints(binary_tree(2))
        model = analytic_work_model()
        node_work, subtree = estimate_node_work(h, model)
        root = h.root
        assert subtree[root.nid] == pytest.approx(
            node_work[root.nid] + sum(subtree[c.nid] for c in root.children)
        )

    def test_leaf_subtree_equals_own(self):
        h = with_leaf_constraints(binary_tree(1))
        node_work, subtree = estimate_node_work(h, analytic_work_model())
        for leaf in h.leaves():
            assert subtree[leaf.nid] == node_work[leaf.nid]


class TestAssignProcessors:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 7, 8])
    def test_assignment_valid(self, p):
        h = with_leaf_constraints(binary_tree(3))
        asg = assign_processors(h, p, analytic_work_model())
        asg.validate(h)  # raises on violation
        assert asg.procs[h.root.nid] == p
        assert asg.ranges[h.root.nid] == (0, p)

    def test_power_of_two_balanced(self):
        h = with_leaf_constraints(binary_tree(3))
        asg = assign_processors(h, 8, analytic_work_model())
        for leaf in h.leaves():
            assert asg.procs[leaf.nid] == 1
        ranges = sorted(asg.ranges[l.nid] for l in h.leaves())
        assert ranges == [(i, i + 1) for i in range(8)]

    def test_sibling_ranges_disjoint_when_split(self):
        h = with_leaf_constraints(binary_tree(2))
        asg = assign_processors(h, 4, analytic_work_model())
        left, right = h.root.children
        lr, rr = asg.ranges[left.nid], asg.ranges[right.nid]
        assert lr[1] <= rr[0] or rr[1] <= lr[0]

    def test_single_processor_everywhere(self):
        h = with_leaf_constraints(binary_tree(2))
        asg = assign_processors(h, 1, analytic_work_model())
        assert all(v == 1 for v in asg.procs.values())
        assert all(r == (0, 1) for r in asg.ranges.values())

    def test_odd_processors_split_unevenly(self):
        h = with_leaf_constraints(binary_tree(1))
        asg = assign_processors(h, 3, analytic_work_model())
        counts = sorted(asg.procs[c.nid] for c in h.root.children)
        assert counts == [1, 2]

    def test_uneven_work_attracts_processors(self):
        """A subtree with much more work must get more processors."""
        light = HierarchyNode(atoms=np.arange(0, 2))
        heavy = HierarchyNode(atoms=np.arange(2, 22))
        root = HierarchyNode(atoms=np.arange(22), children=[light, heavy])
        h = Hierarchy(root, 22)
        cons = [DistanceConstraint(0, 1, 1.0, 0.1)]
        cons += [
            DistanceConstraint(i, j, 1.0, 0.1)
            for i in range(2, 22)
            for j in range(i + 1, 22)
        ]
        assign_constraints(h, cons)
        asg = assign_processors(h, 8, analytic_work_model())
        assert asg.procs[heavy.nid] > asg.procs[light.nid]

    def test_invalid_processor_count(self):
        h = with_leaf_constraints(binary_tree(1))
        with pytest.raises(AssignmentError):
            assign_processors(h, 0, analytic_work_model())

    @given(p=st.integers(1, 16), depth=st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_property_nesting_and_counts(self, p, depth):
        """Every node has >= 1 processor; child ranges nest in parents;
        sibling groups that split cover the parent range exactly."""
        h = with_leaf_constraints(binary_tree(depth))
        asg = assign_processors(h, p, analytic_work_model())
        asg.validate(h)
        for node in h.nodes:
            if node.children and asg.procs[node.nid] > 1:
                child_ranges = sorted(asg.ranges[c.nid] for c in node.children)
                merged_lo = child_ranges[0][0]
                merged_hi = max(hi for _, hi in child_ranges)
                plo, phi = asg.ranges[node.nid]
                assert merged_lo >= plo and merged_hi <= phi


class TestValidation:
    def test_missing_node_detected(self):
        h = with_leaf_constraints(binary_tree(1))
        asg = ProcessorAssignment(n_processors=2)
        with pytest.raises(AssignmentError, match="no processor"):
            asg.validate(h)

    def test_range_count_mismatch_detected(self):
        h = with_leaf_constraints(binary_tree(1))
        asg = assign_processors(h, 2, analytic_work_model())
        asg.ranges[h.root.nid] = (0, 1)
        with pytest.raises(AssignmentError):
            asg.validate(h)
