"""Shared fixtures: small deterministic problems and estimates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.constraints import DistanceConstraint, LinearConstraint, PositionConstraint
from repro.core.hierarchy import Hierarchy, HierarchyNode
from repro.core.state import StructureEstimate


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def square_coords() -> np.ndarray:
    """Four atoms on a unit square in the z=0 plane."""
    return np.array([[0.0, 0, 0], [1, 0, 0], [1, 1, 0], [0, 1, 0]])


@pytest.fixture
def square_constraints(square_coords) -> list:
    """Anchors + edge and diagonal distances pinning the square."""
    c = square_coords
    d = float(np.sqrt(2))
    return [
        PositionConstraint(0, c[0], 0.01),
        PositionConstraint(1, c[1], 0.01),
        DistanceConstraint(1, 2, 1.0, 0.01),
        DistanceConstraint(2, 3, 1.0, 0.01),
        DistanceConstraint(3, 0, 1.0, 0.01),
        DistanceConstraint(0, 2, d, 0.01),
        DistanceConstraint(1, 3, d, 0.01),
    ]


@pytest.fixture
def square_estimate(square_coords, rng) -> StructureEstimate:
    noisy = square_coords + rng.normal(0, 0.2, square_coords.shape)
    return StructureEstimate.from_coords(noisy, sigma=1.0)


@pytest.fixture
def two_group_problem(rng):
    """8 atoms in two groups with linear constraints; exact flat==hier case."""
    p = 8
    coords = rng.normal(0, 2, (p, 3))
    constraints = []
    for grp in [(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7)]:
        a = rng.normal(0, 1, (1, 6))
        constraints.append(
            LinearConstraint(grp, a, a @ coords[list(grp)].ravel(), np.array([0.05]))
        )
    constraints.append(PositionConstraint(0, coords[0], 0.02))
    constraints.append(PositionConstraint(4, coords[4], 0.02))
    cross = (1, 6)
    a = rng.normal(0, 1, (2, 6))
    constraints.append(
        LinearConstraint(cross, a, a @ coords[list(cross)].ravel(), np.array([0.1, 0.1]))
    )
    left = HierarchyNode(atoms=np.arange(0, 4))
    right = HierarchyNode(atoms=np.arange(4, 8))
    root = HierarchyNode(atoms=np.arange(8), children=[left, right])
    hierarchy = Hierarchy(root, p)
    estimate = StructureEstimate.from_coords(
        coords + rng.normal(0, 0.5, (p, 3)), sigma=1.0
    )
    return coords, constraints, hierarchy, estimate


@pytest.fixture
def helix2_problem():
    """A 2-base-pair helix problem (86 atoms), cached per test session."""
    from repro.molecules.rna import build_helix

    problem = build_helix(2)
    problem.assign()
    return problem
