"""Tests for the constraint classes (evaluation, residuals, validation)."""

import numpy as np
import pytest

from repro.constraints import (
    AngleConstraint,
    DistanceConstraint,
    LinearConstraint,
    PositionConstraint,
    TorsionConstraint,
)
from repro.constraints.distance import distance_between
from repro.constraints.torsion import dihedral
from repro.errors import ConstraintError


@pytest.fixture
def coords(rng):
    return rng.normal(0, 3, (6, 3))


class TestDistance:
    def test_evaluate(self, coords):
        c = DistanceConstraint(0, 1, 2.0, 0.1)
        expected = np.linalg.norm(coords[0] - coords[1])
        assert c.evaluate(coords)[0] == pytest.approx(expected)

    def test_distance_between_helper(self, coords):
        assert distance_between(coords, 2, 4) == pytest.approx(
            np.linalg.norm(coords[2] - coords[4])
        )

    def test_residual(self, coords):
        c = DistanceConstraint(0, 1, 5.0, 0.1)
        assert c.residual(coords)[0] == pytest.approx(5.0 - c.evaluate(coords)[0])

    def test_dimension_is_one(self):
        assert DistanceConstraint(0, 1, 1.0, 0.1).dimension == 1

    def test_atoms(self):
        assert DistanceConstraint(3, 7, 1.0, 0.1).atoms == (3, 7)

    def test_state_columns(self):
        cols = DistanceConstraint(1, 3, 1.0, 0.1).state_columns()
        assert np.array_equal(cols, [3, 4, 5, 9, 10, 11])

    def test_same_atom_rejected(self):
        with pytest.raises(ConstraintError):
            DistanceConstraint(2, 2, 1.0, 0.1)

    def test_negative_distance_rejected(self):
        with pytest.raises(ConstraintError):
            DistanceConstraint(0, 1, -1.0, 0.1)

    def test_nonpositive_variance_rejected(self):
        with pytest.raises(ConstraintError):
            DistanceConstraint(0, 1, 1.0, 0.0)

    def test_negative_atom_rejected(self):
        with pytest.raises(ConstraintError):
            DistanceConstraint(-1, 1, 1.0, 0.1)

    def test_coincident_atoms_jacobian_finite(self):
        coords = np.zeros((2, 3))
        jac = DistanceConstraint(0, 1, 1.0, 0.1).jacobian(coords)
        assert np.all(np.isfinite(jac))


class TestAngle:
    def test_right_angle(self):
        coords = np.array([[1.0, 0, 0], [0, 0, 0], [0, 1, 0]])
        c = AngleConstraint(0, 1, 2, np.pi / 2, 0.01)
        assert c.evaluate(coords)[0] == pytest.approx(np.pi / 2)

    def test_straight_angle(self):
        coords = np.array([[1.0, 0, 0], [0, 0, 0], [-1, 0, 0]])
        c = AngleConstraint(0, 1, 2, np.pi / 2, 0.01)
        assert c.evaluate(coords)[0] == pytest.approx(np.pi)

    def test_distinct_atoms_required(self):
        with pytest.raises(ConstraintError):
            AngleConstraint(0, 0, 1, 1.0, 0.1)

    def test_angle_range_validated(self):
        with pytest.raises(ConstraintError):
            AngleConstraint(0, 1, 2, 0.0, 0.1)
        with pytest.raises(ConstraintError):
            AngleConstraint(0, 1, 2, np.pi, 0.1)

    def test_jacobian_shape(self, coords):
        jac = AngleConstraint(0, 1, 2, 1.0, 0.1).jacobian(coords)
        assert jac.shape == (1, 9)

    def test_degenerate_geometry_finite(self):
        coords = np.array([[1.0, 0, 0], [0, 0, 0], [2.0, 0, 0]])  # collinear
        jac = AngleConstraint(0, 1, 2, 1.0, 0.1).jacobian(coords)
        assert np.all(np.isfinite(jac))


class TestTorsion:
    def test_planar_zero(self):
        coords = np.array([[0.0, 1, 0], [0, 0, 0], [1, 0, 0], [1, 1, 0]])
        assert dihedral(coords, 0, 1, 2, 3) == pytest.approx(0.0, abs=1e-12)

    def test_trans_is_pi(self):
        coords = np.array([[0.0, 1, 0], [0, 0, 0], [1, 0, 0], [1, -1, 0]])
        assert abs(dihedral(coords, 0, 1, 2, 3)) == pytest.approx(np.pi)

    def test_sign_convention(self):
        coords = np.array([[0.0, 1, 0], [0, 0, 0], [1, 0, 0], [1, 0, 1]])
        up = dihedral(coords, 0, 1, 2, 3)
        coords[3] = [1, 0, -1]
        down = dihedral(coords, 0, 1, 2, 3)
        assert up == pytest.approx(-down)

    def test_wrapped_residual(self):
        coords = np.array([[0.0, 1, 0], [0, 0, 0], [1, 0, 0], [1, -1, 0.05]])
        # actual ≈ ±π; target near −π on the other side of the cut
        c = TorsionConstraint(0, 1, 2, 3, -3.1, 0.1)
        assert abs(c.residual(coords)[0]) < 0.2

    def test_distinct_atoms_required(self):
        with pytest.raises(ConstraintError):
            TorsionConstraint(0, 1, 2, 2, 1.0, 0.1)

    def test_jacobian_shape(self, coords):
        jac = TorsionConstraint(0, 1, 2, 3, 1.0, 0.1).jacobian(coords)
        assert jac.shape == (1, 12)


class TestPosition:
    def test_evaluate_returns_position(self, coords):
        c = PositionConstraint(2, np.zeros(3), 1.0)
        assert np.allclose(c.evaluate(coords), coords[2])

    def test_dimension_three(self):
        assert PositionConstraint(0, np.zeros(3), 1.0).dimension == 3

    def test_jacobian_identity(self, coords):
        assert np.allclose(PositionConstraint(0, np.zeros(3), 1.0).jacobian(coords), np.eye(3))

    def test_bad_position_shape(self):
        with pytest.raises(ConstraintError):
            PositionConstraint(0, np.zeros(2), 1.0)

    def test_target_copied(self):
        pos = np.ones(3)
        c = PositionConstraint(0, pos, 1.0)
        pos[0] = 99.0
        assert c.target[0] == 1.0


class TestLinear:
    def test_evaluate(self, coords):
        a = np.array([[1.0, 0, 0, -1, 0, 0]])
        c = LinearConstraint((0, 1), a, np.array([0.0]), np.array([0.1]))
        assert c.evaluate(coords)[0] == pytest.approx(coords[0, 0] - coords[1, 0])

    def test_jacobian_is_coefficients(self, coords):
        a = np.ones((2, 6))
        c = LinearConstraint((0, 1), a, np.zeros(2), np.ones(2))
        assert c.jacobian(coords) is a

    def test_shape_validation(self):
        with pytest.raises(ConstraintError):
            LinearConstraint((0, 1), np.ones((1, 5)), np.zeros(1), np.ones(1))

    def test_duplicate_atoms_rejected(self):
        with pytest.raises(ConstraintError):
            LinearConstraint((1, 1), np.ones((1, 6)), np.zeros(1), np.ones(1))

    def test_variance_shape_mismatch(self):
        with pytest.raises(ConstraintError):
            LinearConstraint((0, 1), np.ones((2, 6)), np.zeros(2), np.ones(3))
