#!/usr/bin/env python
"""Reconstruct an RNA double helix hierarchically (the paper's §3 workload).

Generates the 4-base-pair helix with its five categories of distance
constraints, decomposes it per Figure 2 (helix → sub-helices → base pairs
→ bases → backbone/sidechain), assigns every constraint to the smallest
containing node, and solves post-order.  Compares cost and result against
the flat organization — Table 1 in miniature.

Run:  python examples/helix_reconstruction.py
"""

import numpy as np

from repro.core import FlatSolver, HierarchicalSolver
from repro.linalg import recording
from repro.molecules import build_helix, superposed_rmsd

problem = build_helix(n_base_pairs=4)
problem.assign()  # constraints → smallest containing hierarchy node

print(f"workload: {problem.name}")
print(f"  atoms: {problem.n_atoms}  (state dimension {problem.state_dim})")
print(f"  scalar constraints: {problem.n_constraint_rows}")
print(f"  constraint rows per category: {problem.metadata['category_counts']}")
print(f"  tree: {len(problem.hierarchy)} nodes, height {problem.hierarchy.height()}, "
      f"{len(problem.hierarchy.leaves())} leaves")
print(f"  constraint rows at leaves: {problem.hierarchy.leaf_constraint_fraction():.0%}")

estimate = problem.initial_estimate(seed=0)
print(f"\ninitial shape error: "
      f"{superposed_rmsd(estimate.coords, problem.true_coords):.2f} Å RMSD")

# --- one cycle, flat vs hierarchical: same math, fewer useless zeros -------
with recording() as rec_flat:
    flat_cycle = FlatSolver(problem.constraints, batch_size=16).run_cycle(estimate)
with recording() as rec_hier:
    hier_cycle = HierarchicalSolver(problem.hierarchy, batch_size=16).run_cycle(estimate)

print("\none full cycle over all constraints:")
print(f"  flat:         {rec_flat.total_flops():.3e} FLOPs, {flat_cycle.seconds:.3f} s")
print(f"  hierarchical: {rec_hier.total_flops():.3e} FLOPs, {hier_cycle.seconds:.3f} s")
print(f"  FLOP ratio:   {rec_flat.total_flops() / rec_hier.total_flops():.1f}x "
      "(grows with molecule size; 30x at 16 bp in the paper)")

# --- iterate the hierarchical solver to an equilibrium ---------------------
solver = HierarchicalSolver(problem.hierarchy, batch_size=16)
report = solver.solve(estimate, max_cycles=15, tol=1e-4, gauge_invariant=True)
final_rmsd = superposed_rmsd(report.estimate.coords, problem.true_coords)
print(f"\nafter {report.cycles} cycles: shape error {final_rmsd:.3f} Å RMSD "
      f"(converged: {report.converged})")

# Per-node work profile of the last cycle: the hierarchy pushes most work
# to small nodes — exactly why it beats the flat organization.
cycle = solver.run_cycle(report.estimate)
by_depth: dict[int, float] = {}
for record in cycle.records:
    by_depth[record.depth] = by_depth.get(record.depth, 0.0) + record.flops
print("\nFLOPs by tree depth (root = 0):")
for depth in sorted(by_depth):
    print(f"  depth {depth}: {by_depth[depth]:.3e}")
