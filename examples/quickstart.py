#!/usr/bin/env python
"""Quickstart: estimate a small molecular structure from uncertain data.

Builds a 4-atom "molecule" (a unit square), feeds the estimator a few
noisy measurements — two absolute positions (think neutron-diffraction
anchors) and five distances (think NMR NOE data) — and iterates the
sequential update algorithm to convergence.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.constraints import DistanceConstraint, PositionConstraint
from repro.core import FlatSolver, StructureEstimate

# --- the unknown true structure (used only to fabricate measurements) -----
true_coords = np.array(
    [
        [0.0, 0.0, 0.0],
        [1.0, 0.0, 0.0],
        [1.0, 1.0, 0.0],
        [0.0, 1.0, 0.0],
    ]
)

# --- measurements: z = h(x) + v, v ~ N(0, R) -------------------------------
diagonal = float(np.sqrt(2.0))
constraints = [
    # Two anchors pin the global frame (variance 0.01 Å²).
    PositionConstraint(0, true_coords[0], sigma2=0.01),
    PositionConstraint(1, true_coords[1], sigma2=0.01),
    # Distances define the rest of the shape.
    DistanceConstraint(1, 2, 1.0, sigma2=0.01),
    DistanceConstraint(2, 3, 1.0, sigma2=0.01),
    DistanceConstraint(3, 0, 1.0, sigma2=0.01),
    DistanceConstraint(0, 2, diagonal, sigma2=0.01),
    DistanceConstraint(1, 3, diagonal, sigma2=0.01),
]

# --- initial estimate: a bad guess with an honest (large) prior ------------
rng = np.random.default_rng(7)
guess = true_coords + rng.normal(0.0, 0.3, true_coords.shape)
estimate = StructureEstimate.from_coords(guess, sigma=1.0)

print("initial RMSD to truth:", round(estimate.rmsd(true_coords), 4), "Å")
print("initial per-atom uncertainty:", np.round(estimate.atom_uncertainty(), 3))

# --- solve: repeated cycles of the Figure 1 update procedure ---------------
solver = FlatSolver(constraints, batch_size=4)
report = solver.solve(estimate, max_cycles=200, tol=1e-4)

print(f"\nconverged: {report.converged} after {report.cycles} cycles")
print("final RMSD to truth:", round(report.estimate.rmsd(true_coords), 4), "Å")
print("final per-atom uncertainty:", np.round(report.estimate.atom_uncertainty(), 3))
print("\nestimated coordinates:")
print(np.round(report.estimate.coords, 3))

# The covariance tells you *which parts* of the structure the data define
# well: anchored atoms are tight, atoms held only by distances are looser.
assert report.estimate.atom_uncertainty()[0] < report.estimate.atom_uncertainty()[2]
print("\nanchored atom 0 is better determined than distance-only atom 2, "
      "as the covariance should report.")
