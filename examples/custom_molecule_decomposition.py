#!/usr/bin/env python
"""Bring your own molecule: automatic hierarchy construction (§5).

Shows the full workflow for a structure the library has no generator
for — a small two-domain protein-like chain assembled from scratch with
the constraint API — and compares three ways of obtaining a hierarchy:

1. hand-specified (you know the domains),
2. recursive coordinate bisection (geometry only),
3. constraint-graph partitioning (the paper's §5 proposal).

Run:  python examples/custom_molecule_decomposition.py
"""

import numpy as np

from repro.constraints import AngleConstraint, DistanceConstraint, PositionConstraint
from repro.core import (
    HierarchicalSolver,
    Hierarchy,
    HierarchyNode,
    assign_constraints,
    graph_partition_hierarchy,
    recursive_coordinate_bisection,
)
from repro.core.state import StructureEstimate
from repro.linalg import recording

# --- build a two-domain chain molecule -------------------------------------
rng = np.random.default_rng(42)
n_per_domain = 14
offsets = [np.zeros(3), np.array([20.0, 3.0, -2.0])]
coords = np.vstack(
    [
        off + np.cumsum(rng.normal(0, 1, (n_per_domain, 3)) + [1.4, 0, 0], axis=0)
        for off in offsets
    ]
)
n_atoms = coords.shape[0]

constraints = []
for d, base in enumerate((0, n_per_domain)):
    ids = range(base, base + n_per_domain)
    for i in ids:
        # chain bonds + next-nearest "angle-like" distances within a domain
        if i + 1 in ids:
            constraints.append(
                DistanceConstraint(i, i + 1, float(np.linalg.norm(coords[i] - coords[i + 1])), 0.01)
            )
        if i + 2 in ids:
            constraints.append(
                DistanceConstraint(i, i + 2, float(np.linalg.norm(coords[i] - coords[i + 2])), 0.05)
            )
        if i + 2 in ids:
            u = coords[i] - coords[i + 1]
            v = coords[i + 2] - coords[i + 1]
            theta = float(np.arccos(u @ v / (np.linalg.norm(u) * np.linalg.norm(v))))
            constraints.append(AngleConstraint(i, i + 1, i + 2, theta, 0.01))
# a couple of loose inter-domain measurements + one anchor per domain
for i, j in [(3, n_per_domain + 4), (9, n_per_domain + 10)]:
    constraints.append(
        DistanceConstraint(i, j, float(np.linalg.norm(coords[i] - coords[j])), 4.0)
    )
constraints.append(PositionConstraint(0, coords[0], 1.0))
constraints.append(PositionConstraint(n_per_domain, coords[n_per_domain], 1.0))

print(f"custom molecule: {n_atoms} atoms, "
      f"{sum(c.dimension for c in constraints)} constraint rows\n")

# --- three hierarchies ------------------------------------------------------
hand = Hierarchy(
    HierarchyNode(
        atoms=np.arange(n_atoms),
        children=[
            HierarchyNode(atoms=np.arange(0, n_per_domain), name="domain0"),
            HierarchyNode(atoms=np.arange(n_per_domain, n_atoms), name="domain1"),
        ],
        name="root",
    ),
    n_atoms,
)
rcb = recursive_coordinate_bisection(coords, max_leaf_atoms=8)
graph = graph_partition_hierarchy(n_atoms, constraints, max_leaf_atoms=8, method="kl")

estimate = StructureEstimate.from_coords(coords + rng.normal(0, 0.5, coords.shape), sigma=3.0)
print(f"{'hierarchy':>12} {'leaves':>7} {'leaf-capture':>13} {'cycle FLOPs':>12}")
for name, hierarchy in (("hand", hand), ("rcb", rcb), ("graph-kl", graph)):
    assign_constraints(hierarchy, constraints)
    with recording() as rec:
        HierarchicalSolver(hierarchy, batch_size=8).run_cycle(estimate)
    print(
        f"{name:>12} {len(hierarchy.leaves()):>7} "
        f"{hierarchy.leaf_constraint_fraction():>12.0%} {rec.total_flops():>12.3e}"
    )

print("\nthe graph partitioner discovers the two domains from the constraint")
print("topology alone and matches the hand decomposition; blind coordinate")
print("bisection splits chains mid-bond and pays for it at the upper levels.")

# --- solve with the automatically found hierarchy ---------------------------
assign_constraints(graph, constraints)
report = HierarchicalSolver(graph, batch_size=8).solve(
    estimate, max_cycles=20, tol=1e-5
)
print(f"\nsolved with graph-kl hierarchy: RMSD to truth "
      f"{report.estimate.rmsd(coords):.3f} Å after {report.cycles} cycles")
