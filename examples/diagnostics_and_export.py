#!/usr/bin/env python
"""Post-solve workflow: outlier hunting, re-refinement, PDB export.

Real measurement sets contain mistakes — misassigned NMR peaks become
tight distance constraints between the wrong atoms, and a probabilistic
refiner will dutifully distort the whole structure trying to satisfy
them.  The standard workflow is: refine, screen the standardized
residuals, remove (or down-weight) the flagged measurements, re-refine.
This example runs that loop on a helix with two planted misassignments
and exports the cleaned model with uncertainties in the PDB B-factor
column.

Run:  python examples/diagnostics_and_export.py
"""

import tempfile
from pathlib import Path

from repro.constraints import DistanceConstraint
from repro.core import HierarchicalSolver
from repro.core.diagnostics import format_residual_report, residual_report
from repro.core.hierarchy import assign_constraints
from repro.molecules import build_helix, superposed_rmsd
from repro.molecules.pdb import read_pdb, write_pdb

problem = build_helix(2)

# Plant two misassignments: tight "measurements" between far-apart atoms.
bad = [
    DistanceConstraint(0, 50, 3.0, 0.05**2),    # truly ~19 Å apart
    DistanceConstraint(10, 70, 2.5, 0.05**2),
]
corrupted = list(problem.constraints) + bad
planted = {len(problem.constraints), len(problem.constraints) + 1}


def refine(constraints):
    assign_constraints(problem.hierarchy, constraints)
    solver = HierarchicalSolver(problem.hierarchy, batch_size=16)
    report = solver.solve(
        problem.initial_estimate(0), max_cycles=12, tol=1e-3, gauge_invariant=True
    )
    return report.estimate


# --- round 1: refine against the corrupted set ------------------------------
estimate = refine(corrupted)
diag = residual_report(estimate, corrupted, outlier_z=4.0)
print("after round 1 (corrupted data):")
print(f"  overall chi2/dof: {diag.overall_reduced_chi2:.1f}  "
      f"(should be ~1; the misassignments poison everything)")
worst_two = {idx for idx, _n, _z in diag.outliers[:2]}
print(f"  two worst outliers by |z|: {sorted(worst_two)} "
      f"(planted at {sorted(planted)})")
assert worst_two == planted, "the screen must rank the planted errors first"

# --- round 2: drop the flagged measurements, re-refine ----------------------
cleaned = [c for i, c in enumerate(corrupted) if i not in worst_two]
estimate = refine(cleaned)
diag2 = residual_report(estimate, cleaned, outlier_z=4.0)
print("\nafter round 2 (outliers removed):")
print(format_residual_report(diag2))
rmsd = superposed_rmsd(estimate.coords, problem.true_coords)
print(f"\nshape error vs truth: {rmsd:.3f} Å RMSD")

# --- export with uncertainty as B-factors ------------------------------------
with tempfile.TemporaryDirectory() as tmp:
    pdb_path = Path(tmp) / "helix2.pdb"
    write_pdb(pdb_path, estimate, title="helix-2 after outlier removal")
    coords, bfactors = read_pdb(pdb_path)
    print(f"\nwrote {pdb_path.name}: {coords.shape[0]} atoms, "
          f"B-factor range {bfactors.min():.1f}-{bfactors.max():.1f} "
          "(colour by B-factor in a viewer to see where the data is thin)")
