#!/usr/bin/env python
"""Parallel speedup study: static vs dynamic scheduling on two machines.

Reproduces the mechanics behind the paper's Figures 7-10 on a reduced
helix, then goes beyond the paper: it compares the §4.3 static processor
assignment against the §5 dynamic re-grouping proposal, showing the
static scheme's non-power-of-2 dips and how re-grouping softens them.

Run:  python examples/parallel_speedup_study.py
"""

from repro.core import HierarchicalSolver
from repro.machine import CHALLENGE, DASH, simulate_solve
from repro.molecules import build_helix
from repro.parallel import dynamic_assignment_schedule

problem = build_helix(8)
problem.assign()
solver = HierarchicalSolver(problem.hierarchy, batch_size=16)
cycle = solver.run_cycle(problem.initial_estimate(0))
records = cycle.record_by_nid()

print(f"workload: {problem.name} ({problem.n_atoms} atoms, "
      f"{problem.n_constraint_rows} constraint rows)\n")

for machine in (DASH(), CHALLENGE()):
    max_p = machine.n_processors
    counts = [p for p in (1, 2, 3, 4, 5, 6, 7, 8, 12, 16, 24, 32) if p <= max_p]
    base = simulate_solve(cycle, problem.hierarchy, machine, 1)
    print(f"{machine.name}: {max_p} processors, "
          f"{'distributed' if machine.distributed else 'centralized'} memory")
    print(f"{'NP':>4} {'static':>9} {'dynamic':>9} {'s-spdup':>8} {'d-spdup':>8}")
    for p in counts:
        static = simulate_solve(cycle, problem.hierarchy, machine, p)
        dynamic = dynamic_assignment_schedule(problem.hierarchy, records, machine, p)
        print(
            f"{p:>4} {static.work_time:>9.2f} {dynamic.work_time:>9.2f} "
            f"{base.work_time / static.work_time:>8.2f} "
            f"{base.work_time / dynamic.work_time:>8.2f}"
        )
    print()

# Visualize one schedule: the static assignment at a non-power-of-2 count.
from repro.machine import simulate_solve as _sim
from repro.machine.gantt import gantt_chart

print("schedule at P=6 on DASH (note the stall before the root join):")
print(gantt_chart(_sim(cycle, problem.hierarchy, DASH(), 6), width=72))
print()

print("Things to notice (cf. the paper):")
print(" * static speedups dip at 3, 5, 6, 7 ... — the binary helix tree cannot")
print("   divide an odd processor group evenly, and the smaller sibling group")
print("   stalls the join (paper §4.4).")
print(" * dynamic re-grouping recovers part of each dip by re-dividing all")
print("   processors at every wavefront (paper §5's proposal).")
print(" * the Challenge scales dense-sparse products better than DASH: its")
print("   centralized memory has no remote-miss penalty (paper §4.4).")
