#!/usr/bin/env python
"""Model the 30S ribosomal subunit (the paper's §4.4 large workload).

A synthetic complex with the published composition — 21 proteins anchored
by neutron-diffraction positions, the 16S rRNA's ~65 helices and ~65
coils positioned by inter-helix and helix-protein distance data, ~900
pseudo-atoms and ~6500 constraints in all — solved hierarchically and
then priced on the simulated DASH multiprocessor at several machine
sizes.

Run:  python examples/ribosome_30s.py
"""

import numpy as np

from repro.core import HierarchicalSolver
from repro.machine import DASH, simulate_solve
from repro.machine.trace import format_speedup_table
from repro.molecules import build_ribo30s

problem = build_ribo30s(seed=0)
problem.assign()

print(f"workload: {problem.name}")
print(f"  pseudo-atoms: {problem.n_atoms}, scalar constraints: {problem.n_constraint_rows}")
print("  constraint mix:")
for kind, count in problem.metadata["category_counts"].items():
    print(f"    {kind:20s} {count}")
root = problem.hierarchy.root
print(f"  tree: {len(problem.hierarchy)} nodes; root branches into "
      f"{len(root.children)} domains; height {problem.hierarchy.height()}")

# --- one hierarchical cycle, recording every kernel ------------------------
solver = HierarchicalSolver(problem.hierarchy, batch_size=16)
estimate = problem.initial_estimate(seed=0)
cycle = solver.run_cycle(estimate)
print(f"\none cycle on the host: {cycle.seconds:.2f} s, "
      f"{len(cycle.recorder.events)} kernel events")

coords = cycle.estimate.coords
sample = problem.constraints[:: max(1, len(problem.constraints) // 200)]
residual = float(np.mean([np.abs(c.residual(coords)).mean() for c in sample]))
print(f"mean constraint residual after one cycle: {residual:.2f} Å "
      "(full convergence takes 20-200 cycles; see the paper)")

# --- price the same cycle on the 1996 Stanford DASH ------------------------
print("\nsimulated DASH (32x 33 MHz MIPS R3000, 8 clusters, directory coherence):")
results = [
    simulate_solve(cycle, problem.hierarchy, DASH(), p) for p in (1, 2, 4, 8, 16, 32)
]
print(format_speedup_table(results))
print("\npaper's Table 4 reference points: 924.57 s at 1 processor, "
      "speedup 24.24 at 32.")

# Which parts of the structure does the data define best?  Proteins are
# anchored absolutely; coils hang off helices through loose long-range data.
uncertainty = cycle.estimate.atom_uncertainty()
protein_atoms = [c.atoms[0] for c in problem.constraints if len(c.atoms) == 1]
mask = np.zeros(problem.n_atoms, dtype=bool)
mask[list(protein_atoms)] = True
print(f"\nmean positional uncertainty: proteins {uncertainty[mask].mean():.2f} Å, "
      f"rRNA {uncertainty[~mask].mean():.2f} Å")
