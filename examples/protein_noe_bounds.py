#!/usr/bin/env python
"""Protein determination from mixed Gaussian + bound (NOE) data.

Goes beyond the paper's RNA workloads: an idealized multi-element protein
solved through the high-level :class:`StructureEstimator` facade, with
part of the long-range data supplied as *distance bounds* (the
non-Gaussian constraint family of the paper's reference [2]) rather than
measured values, plus the variance-annealing schedule that keeps the
tightly-constrained nonlinear iteration out of frustrated folds.

Run:  python examples/protein_noe_bounds.py
"""

import numpy as np

from repro.constraints import DistanceBoundConstraint, DistanceConstraint
from repro.core import StructureEstimator, UpdateOptions
from repro.molecules import superposed_rmsd
from repro.molecules.protein import build_protein

problem = build_protein(seed=0)
print(f"protein: {problem.n_atoms} atoms, "
      f"{problem.metadata['n_residues']} residues in "
      f"{problem.metadata['n_elements']} secondary-structure elements")

# Replace the loose long-range contact *measurements* with NOE-style
# *upper bounds* ("these atoms are within 1.2x their true separation").
constraints = []
n_bounds = 0
for c in problem.constraints:
    if isinstance(c, DistanceConstraint) and c.sigma2 >= 1.0:  # the contacts
        constraints.append(
            DistanceBoundConstraint(c.i, c.j, None, 1.2 * c.distance, c.sigma2)
        )
        n_bounds += 1
    else:
        constraints.append(c)
print(f"converted {n_bounds} long-range contacts into upper bounds; "
      f"{len(constraints) - n_bounds} Gaussian constraints remain")

estimator = StructureEstimator(
    problem.n_atoms,
    constraints,
    decomposition=problem.hierarchy,           # elements → residues
    batch_size=16,
    options=UpdateOptions(local_iterations=2),  # iterated relinearization
)

initial = problem.initial_estimate(seed=0)
print(f"\ninitial shape error: "
      f"{superposed_rmsd(initial.coords, problem.true_coords):.2f} Å RMSD")
print(f"initial bound violations: {estimator.bound_violations(initial.coords)}")

solution = estimator.solve(
    initial,
    max_cycles=16,
    tol=1e-3,
    anneal=(100.0, 0.5),   # soften all variances 100x, halve per cycle
)

coords = solution.coords
print(f"\nafter {solution.report.cycles} cycles "
      f"(converged: {solution.converged}):")
print(f"  bound violations: {estimator.bound_violations(coords, slack=0.05)}")
gauss = [c for c in constraints if isinstance(c, DistanceConstraint)]
res = float(np.mean([abs(c.residual(coords)[0]) for c in gauss]))
print(f"  mean Gaussian residual: {res:.3f} Å")

# Per-element recovery: the data determine each element's internal shape
# precisely; the relative placement of elements is exactly as loose as the
# bound data allows — and the covariance reports that honestly.
print("\nper-element shape recovery (superposed RMSD, Å):")
for element in problem.hierarchy.root.children:
    atoms = element.atoms
    before = superposed_rmsd(initial.coords[atoms], problem.true_coords[atoms])
    after = superposed_rmsd(coords[atoms], problem.true_coords[atoms])
    print(f"  {element.name:<16s} {before:5.2f} -> {after:5.2f}")
unc = solution.estimate.atom_uncertainty()
print(f"\nmean per-atom uncertainty: {unc.mean():.2f} Å "
      f"(min {unc.min():.2f}, max {unc.max():.2f})")
